// Package cf is the component-framework kit: the machinery shared by every
// NETKIT CF. Following Szyperski's definition quoted in §2 of the paper —
// "collections of rules and interfaces that govern the interaction of a
// set of components 'plugged into' them" — a Framework couples a capsule
// scope with (a) admission rules checked when a component is plugged in
// and re-checked after architectural mutations, (b) an ACL policing who
// may add/remove dynamic constraints, and (c) support for composite
// components managed by an internal controller (Figure 3).
package cf

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"netkit/core"
)

// Sentinel errors.
var (
	// ErrRuleViolated indicates a component failed an admission rule.
	ErrRuleViolated = errors.New("cf: rule violated")
	// ErrDenied indicates an ACL refusal.
	ErrDenied = errors.New("cf: permission denied")
	// ErrNotMember indicates an operation on a non-member component.
	ErrNotMember = errors.New("cf: not a member")
)

// Rule is one admission/compliance rule. Check inspects a candidate
// component (and may inspect the whole framework) and returns nil when the
// component conforms.
type Rule struct {
	Name  string
	Check func(f *Framework, name string, comp core.Component) error
}

// ACL is a principal→operation permission table, the mechanism §5 names
// for policing constraint addition/removal on composites.
type ACL struct {
	mu    sync.RWMutex
	allow map[string]map[string]bool
}

// NewACL returns an empty table (deny-all).
func NewACL() *ACL {
	return &ACL{allow: make(map[string]map[string]bool)}
}

// Grant permits principal to perform op.
func (a *ACL) Grant(principal, op string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := a.allow[principal]
	if m == nil {
		m = make(map[string]bool)
		a.allow[principal] = m
	}
	m[op] = true
}

// Revoke removes a permission.
func (a *ACL) Revoke(principal, op string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if m := a.allow[principal]; m != nil {
		delete(m, op)
	}
}

// Check returns nil if principal may perform op.
func (a *ACL) Check(principal, op string) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if m := a.allow[principal]; m != nil && m[op] {
		return nil
	}
	return fmt.Errorf("cf: %q may not %q: %w", principal, op, ErrDenied)
}

// Operations policed by framework ACLs.
const (
	OpAddConstraint    = "constraint.add"
	OpRemoveConstraint = "constraint.remove"
	OpAdmit            = "member.admit"
	OpExpel            = "member.expel"
)

// Framework scopes a set of member components inside a capsule and
// enforces rules over them.
type Framework struct {
	name    string
	capsule *core.Capsule
	acl     *ACL

	mu      sync.RWMutex
	rules   []Rule
	members map[string]bool
}

// New creates a framework over capsule with the given admission rules.
func New(name string, capsule *core.Capsule, rules []Rule) (*Framework, error) {
	if name == "" || capsule == nil {
		return nil, fmt.Errorf("cf: empty name or nil capsule")
	}
	return &Framework{
		name:    name,
		capsule: capsule,
		acl:     NewACL(),
		rules:   append([]Rule(nil), rules...),
		members: make(map[string]bool),
	}, nil
}

// Name returns the framework name.
func (f *Framework) Name() string { return f.name }

// Capsule returns the capsule the framework manages.
func (f *Framework) Capsule() *core.Capsule { return f.capsule }

// ACL returns the framework's permission table.
func (f *Framework) ACL() *ACL { return f.acl }

// Admit checks comp against every rule and, on success, inserts it into
// the capsule as a member. Rule failures wrap ErrRuleViolated.
func (f *Framework) Admit(name string, comp core.Component) error {
	if err := f.checkRules(name, comp); err != nil {
		return err
	}
	if err := f.capsule.Insert(name, comp); err != nil {
		return err
	}
	f.mu.Lock()
	f.members[name] = true
	f.mu.Unlock()
	return nil
}

// checkRules runs every rule against the candidate.
func (f *Framework) checkRules(name string, comp core.Component) error {
	f.mu.RLock()
	rules := f.rules
	f.mu.RUnlock()
	for _, r := range rules {
		if err := r.Check(f, name, comp); err != nil {
			return fmt.Errorf("cf: %s: rule %q rejects %q: %v: %w",
				f.name, r.Name, name, err, ErrRuleViolated)
		}
	}
	return nil
}

// Expel removes a member from the framework and the capsule. The member
// must be unbound and stopped (capsule rules apply).
func (f *Framework) Expel(name string) error {
	f.mu.Lock()
	if !f.members[name] {
		f.mu.Unlock()
		return fmt.Errorf("cf: %s: %q: %w", f.name, name, ErrNotMember)
	}
	f.mu.Unlock()
	if err := f.capsule.Remove(name); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.members, name)
	f.mu.Unlock()
	return nil
}

// Members returns the member names, sorted.
func (f *Framework) Members() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.members))
	for n := range f.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IsMember reports membership.
func (f *Framework) IsMember(name string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.members[name]
}

// RecheckAll re-runs every rule against every member: the run-time
// compliance check the paper requires ("rules ... are checked by the CF at
// run-time"). It returns the first violation found, or nil.
func (f *Framework) RecheckAll() error {
	f.mu.RLock()
	names := make([]string, 0, len(f.members))
	for n := range f.members {
		names = append(names, n)
	}
	f.mu.RUnlock()
	sort.Strings(names)
	for _, n := range names {
		comp, ok := f.capsule.Component(n)
		if !ok {
			return fmt.Errorf("cf: %s: member %q vanished: %w", f.name, n, ErrRuleViolated)
		}
		if err := f.checkRules(n, comp); err != nil {
			return err
		}
	}
	return nil
}

// AddConstraint installs a dynamic bind constraint on the capsule, policed
// by the ACL (§5: "addition/removal of constraints is policed by an ACL
// managed by the composite's controller").
func (f *Framework) AddConstraint(principal string, bc core.BindConstraint) error {
	if err := f.acl.Check(principal, OpAddConstraint); err != nil {
		return err
	}
	return f.capsule.AddConstraint(bc)
}

// RemoveConstraint removes a dynamic bind constraint, policed by the ACL.
func (f *Framework) RemoveConstraint(principal, name string) error {
	if err := f.acl.Check(principal, OpRemoveConstraint); err != nil {
		return err
	}
	return f.capsule.RemoveConstraint(name)
}
