package netkit

// Cross-strata integration tests: the Figure-1 stratification exercised as
// one system, and the remaining end-to-end properties DESIGN.md names.

import (
	"context"
	"testing"
	"time"

	"netkit/core"
	"netkit/internal/appsvc"
	"netkit/internal/coord"
	"netkit/internal/netsim"
	"netkit/internal/osabs"
	"netkit/internal/trace"
	"netkit/router"
)

// TestStrataIntegration builds all four strata into one running node:
// stratum 1 devices feed a stratum 2 Router CF pipeline that hands
// selected flows to a stratum 3 execution environment, while a stratum 4
// agent (on a netsim substrate) reserves resources the router honours.
func TestStrataIntegration(t *testing.T) {
	capsule := core.NewCapsule("node")
	fw, err := router.NewFramework(capsule, false)
	if err != nil {
		t.Fatal(err)
	}

	// Stratum 1: devices.
	inNIC, err := osabs.NewNIC("eth0", 2048, 2048)
	if err != nil {
		t.Fatal(err)
	}
	outNIC, err := osabs.NewNIC("eth1", 2048, 8192)
	if err != nil {
		t.Fatal(err)
	}

	// Stratum 2: source -> classifier -> {EE path, fast path} -> sink.
	src, err := router.NewNICSource(inNIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := router.NewClassifier("media", "default")
	if err != nil {
		t.Fatal(err)
	}
	// Stratum 3: the media path runs through an execution environment.
	ee := appsvc.NewExecEnv()
	if err := ee.Attach("udp", &appsvc.MediaFilter{KeepOneIn: 2}, appsvc.Sandbox{}); err != nil {
		t.Fatal(err)
	}
	snk, err := router.NewNICSink(outNIC)
	if err != nil {
		t.Fatal(err)
	}
	for name, comp := range map[string]core.Component{
		"src": src, "cls": cls, "ee": ee, "snk": snk,
	} {
		if err := fw.Admit(name, comp); err != nil {
			t.Fatalf("admit %s: %v", name, err)
		}
	}
	for _, b := range [][3]string{
		{"src", "out", "cls"}, {"cls", "media", "ee"},
		{"cls", "default", "snk"}, {"ee", "out", "snk"},
	} {
		if _, err := router.ConnectPush(capsule, b[0], b[1], b[2]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cls.RegisterFilter("udp and dst port 5004", 1, "media"); err != nil {
		t.Fatal(err)
	}
	if err := capsule.Snapshot().Validate(); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if err := capsule.StartAll(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := capsule.StopAll(ctx); err != nil {
			t.Errorf("stop: %v", err)
		}
	}()

	// Stratum 4: a signalling agent on a 3-node substrate reserves
	// bandwidth for the media session before traffic flows.
	w := netsim.NewNetwork()
	defer w.Stop()
	names, err := netsim.Line(w, "n", 3, netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	agents := make([]*coord.Agent, 3)
	for i, name := range names {
		node, err := w.Node(name)
		if err != nil {
			t.Fatal(err)
		}
		caps := map[string]int64{}
		for _, nb := range node.Neighbors() {
			caps[nb] = 1_000_000
		}
		agents[i] = coord.NewAgent(node, coord.AgentConfig{Capacity: caps})
	}
	if err := agents[0].Reserve("media-session", names, 500_000, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	// Drive traffic: half media (5004), half other.
	gen, err := trace.NewGenerator(trace.Config{Seed: 77, Flows: 8, UDPShare: 100})
	if err != nil {
		t.Fatal(err)
	}
	const nMedia, nOther = 200, 200
	for i := 0; i < nMedia; i++ {
		raw, err := gen.NextFixed(200)
		if err != nil {
			t.Fatal(err)
		}
		// Rewrite destination port to 5004 (media).
		raw[22], raw[23] = 0x13, 0x8c
		if err := inNIC.Inject(raw); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nOther; i++ {
		raw, err := gen.NextFixed(200)
		if err != nil {
			t.Fatal(err)
		}
		raw[22], raw[23] = 0x00, 0x50 // port 80
		if err := inNIC.Inject(raw); err != nil {
			t.Fatal(err)
		}
	}

	// Expect: all "other" packets forwarded; media thinned to half.
	want := uint64(nOther + nMedia/2)
	deadline := time.After(5 * time.Second)
	for outNIC.Stats().TxFrames < want {
		select {
		case <-deadline:
			t.Fatalf("forwarded %d, want %d", outNIC.Stats().TxFrames, want)
		case <-time.After(time.Millisecond):
		}
	}
	// Settle, then check the EE thinned correctly (no over-delivery).
	time.Sleep(50 * time.Millisecond)
	if got := outNIC.Stats().TxFrames; got != want {
		t.Fatalf("forwarded %d, want exactly %d", got, want)
	}
	eeStats, err := ee.StatsOf("media-filter")
	if err != nil {
		t.Fatal(err)
	}
	if eeStats.Hits != nMedia || eeStats.Drops != nMedia/2 {
		t.Fatalf("ee stats = %+v", eeStats)
	}
	// The stratum-4 reservation is held hop by hop.
	if agents[0].Reserved(names[1]) != 500_000 {
		t.Fatal("reservation not held")
	}
}

// TestReconfigureUnderLoadEndToEnd hot-swaps the classifier's downstream
// EE while NIC-driven traffic flows, asserting zero loss attributable to
// the swap.
func TestReconfigureUnderLoadEndToEnd(t *testing.T) {
	capsule := core.NewCapsule("swap-node")
	head := router.NewCounter()
	mid := appsvc.NewExecEnv()
	tail := router.NewCounter()
	sink := router.NewDropper()
	for name, comp := range map[string]core.Component{
		"head": head, "mid": mid, "tail": tail, "sink": sink,
	} {
		if err := capsule.Insert(name, comp); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range [][3]string{
		{"head", "out", "mid"}, {"mid", "out", "tail"}, {"tail", "out", "sink"},
	} {
		if _, err := router.ConnectPush(capsule, b[0], b[1], b[2]); err != nil {
			t.Fatal(err)
		}
	}
	gen, err := trace.NewGenerator(trace.Config{Seed: 5, Flows: 4, UDPShare: 100})
	if err != nil {
		t.Fatal(err)
	}
	raws := make([][]byte, 20000)
	for i := range raws {
		raws[i], err = gen.NextFixed(64)
		if err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan int)
	go func() {
		sent := 0
		for _, raw := range raws {
			if head.Push(router.NewPacket(raw)) == nil {
				sent++
			}
		}
		done <- sent
	}()
	replacement := appsvc.NewExecEnv()
	if err := router.HotSwap(capsule, "mid", "mid2", replacement); err != nil {
		t.Fatal(err)
	}
	sent := <-done
	if got := tail.ElemStats().In; got != uint64(sent) {
		t.Fatalf("lost %d packets across swap", uint64(sent)-got)
	}
	if err := capsule.Snapshot().Validate(); err != nil {
		t.Fatal(err)
	}
}
