package netkit

import (
	"context"
	"fmt"
	"testing"
	"time"

	"netkit/cf"
	"netkit/core"
	"netkit/internal/osabs"
	"netkit/router"
)

// TestUDPPlaneEndToEnd runs the full real-I/O path in-process: a driver
// UDP socket sends frames over loopback into an arena-backed receive
// device, a Blueprint-declared DeviceSource pumps them through a sharded
// counter->validator plane, and a DeviceSink transmits them — one
// batched syscall per batch on Linux — to a receiver socket. Every frame
// must come out the far end: the plane may not drop at this rate.
func TestUDPPlaneEndToEnd(t *testing.T) {
	arena, err := osabs.NewFrameArena(2048, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	rxDev, err := osabs.NewUDPDevice(osabs.UDPConfig{
		Name: "plane-rx", Listen: "127.0.0.1:0", Batch: 32, Arena: arena,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rxDev.Close()
	farEnd, err := osabs.NewUDPDevice(osabs.UDPConfig{Listen: "127.0.0.1:0", Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer farEnd.Close()
	txDev, err := osabs.NewUDPDevice(osabs.UDPConfig{
		Name: "plane-tx", Listen: "127.0.0.1:0", Peer: farEnd.LocalAddr(), Batch: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer txDev.Close()

	replica := func(shard int, fw *cf.Framework) (string, error) {
		cnt := router.ShardName(shard, "cnt")
		val := router.ShardName(shard, "val")
		if err := fw.Admit(cnt, router.NewCounter()); err != nil {
			return "", err
		}
		if err := fw.Admit(val, router.NewChecksumValidator()); err != nil {
			return "", err
		}
		if _, err := fw.Capsule().Bind(cnt, "out", val, router.IPacketPushID); err != nil {
			return "", err
		}
		if _, err := fw.Capsule().Bind(val, "out",
			router.ShardName(shard, "egress"), router.IPacketPushID); err != nil {
			return "", err
		}
		return cnt, nil
	}
	sys, err := NewBlueprint("udp-e2e").
		DeviceSource("src", rxDev, nil, router.PumpConfig{Batch: 32}).
		Shards("plane", 2, replica).
		DeviceSink("snk", txDev).
		Pipe("src", "plane", "snk").
		Build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close(context.Background())

	driver, err := osabs.NewUDPDevice(osabs.UDPConfig{
		Listen: "127.0.0.1:0", Peer: rxDev.LocalAddr(), Batch: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer driver.Close()

	const frames = 512
	sent := 0
	for sent < frames {
		batch := make([][]byte, 0, 32)
		for i := 0; i < 32 && sent+i < frames; i++ {
			batch = append(batch, []byte(fmt.Sprintf("e2e-%04d", sent+i)))
		}
		n, err := driver.SendBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(batch) {
			t.Fatalf("driver refused %d frames", len(batch)-n)
		}
		sent += n
		// Modest pacing keeps socket queues shallow: the claim under test
		// is zero loss at a sane rate, not overload behaviour.
		time.Sleep(2 * time.Millisecond)
	}

	seen := map[string]bool{}
	deadline := time.Now().Add(10 * time.Second)
	for len(seen) < frames && time.Now().Before(deadline) {
		fs, slab, err := farEnd.RecvBatchInto(nil, 32)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fs {
			seen[string(f)] = true
			if slab != nil {
				_ = slab.Release()
			}
		}
	}
	if len(seen) != frames {
		t.Fatalf("far end received %d of %d frames", len(seen), frames)
	}
	for i := 0; i < frames; i++ {
		if want := fmt.Sprintf("e2e-%04d", i); !seen[want] {
			t.Fatalf("frame %q never arrived", want)
		}
	}

	// The device subtree must surface through the component stats the
	// control protocol serves: frames-per-syscall and socket-drop
	// telemetry under the source, syscall amortisation under the sink.
	for compName, wantStat := range map[string]string{
		"src": "udp_rx_frames_per_syscall",
		"snk": "udp_tx_frames",
	} {
		comp, ok := sys.Capsule().Component(compName)
		if !ok {
			t.Fatalf("no %s component", compName)
		}
		stats := comp.(core.IStats).Stats()
		found := false
		for _, s := range stats {
			if s.Name == wantStat {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%s stats lack %s: %+v", compName, wantStat, stats)
		}
	}
}
