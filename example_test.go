package netkit_test

// Example-based documentation for the public SDK surface: the Blueprint
// builder and each of the four meta-models reached through netkit.Meta.

import (
	"context"
	"fmt"

	"netkit"
	"netkit/core"
	"netkit/resources"
	"netkit/router"
)

// pump pushes n minimal UDP packets into the named component.
func pump(c *core.Capsule, component string, n int) error {
	push, err := netkit.Service[router.IPacketPush](c, component, router.IPacketPushID)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := push.Push(testPacket()); err != nil {
			return err
		}
	}
	return nil
}

// ExampleBlueprint declares, builds and runs a three-stage packet
// pipeline in a handful of lines — the boilerplate-free path to a
// running capsule.
func ExampleBlueprint() {
	ctx := context.Background()
	sys, err := netkit.NewBlueprint("pipeline").
		Add("in", router.TypeCounter, nil).
		Add("ttl", router.TypeIPv4Proc, nil).
		Add("sink", router.TypeDropper, nil).
		Pipe("in", "ttl", "sink").
		Build(ctx)
	if err != nil {
		panic(err)
	}
	defer func() { _ = sys.Close(ctx) }()

	if err := pump(sys.Capsule(), "in", 3); err != nil {
		panic(err)
	}
	in, _ := netkit.Service[*router.Counter](sys.Capsule(), "in", router.IPacketPushID)
	fmt.Println("forwarded:", in.ElemStats().Out)
	// Output: forwarded: 3
}

// ExampleMeta shows the unified meta-space entry point: one call yields
// handles onto all four meta-models of a capsule.
func ExampleMeta() {
	ctx := context.Background()
	sys, err := netkit.NewBlueprint("node").
		Add("a", router.TypeCounter, nil).
		Add("b", router.TypeDropper, nil).
		Pipe("a", "b").
		Build(ctx)
	if err != nil {
		panic(err)
	}
	defer func() { _ = sys.Close(ctx) }()

	meta := netkit.Meta(sys.Capsule())
	fmt.Println("components:", len(meta.Architecture().Snapshot().Nodes))
	fmt.Println("push registered:", meta.Interface().Registry() != nil)
	chain, _ := meta.Interception().Chain("a", "out")
	fmt.Println("interceptors:", len(chain))
	fmt.Println("tasks:", len(meta.Resources().Tasks()))
	// Output:
	// components: 2
	// push registered: true
	// interceptors: 0
	// tasks: 0
}

// ExampleMetaSpace_Architecture introspects and constrains the component
// graph through the architecture meta-model.
func ExampleMetaSpace_Architecture() {
	ctx := context.Background()
	sys, err := netkit.NewBlueprint("arch").
		Add("a", router.TypeCounter, nil).
		Add("b", router.TypeDropper, nil).
		Pipe("a", "b").
		Build(ctx)
	if err != nil {
		panic(err)
	}
	defer func() { _ = sys.Close(ctx) }()
	arch := sys.Meta().Architecture()

	g := arch.Snapshot()
	fmt.Printf("%d nodes, %d edges, valid=%v\n", len(g.Nodes), len(g.Edges), arch.Validate() == nil)

	// A named constraint vetoes future binds; the existing graph stands.
	_ = arch.Constrain("freeze", func(*core.Capsule, core.BindRequest) error {
		return fmt.Errorf("topology frozen")
	})
	_, err = sys.Capsule().Bind("a", "out", "a", router.IPacketPushID)
	fmt.Println("bind vetoed:", err != nil)
	fmt.Println("constraints:", arch.Constraints())
	// Output:
	// 2 nodes, 1 edges, valid=true
	// bind vetoed: true
	// constraints: [freeze]
}

// ExampleMetaSpace_Interface looks up interface descriptors and checks
// conformance through the interface meta-model.
func ExampleMetaSpace_Interface() {
	ctx := context.Background()
	sys, err := netkit.NewBlueprint("iface").
		Add("cnt", router.TypeCounter, nil).
		Build(ctx)
	if err != nil {
		panic(err)
	}
	defer func() { _ = sys.Close(ctx) }()
	im := sys.Meta().Interface()

	d, ok := im.Lookup(router.IPacketPushID)
	fmt.Println("descriptor found:", ok, "ops:", len(d.Ops))
	fmt.Println("counter conforms:", im.Conforms(router.IPacketPushID, router.NewCounter()))
	ids, _ := im.ProvidedBy("cnt")
	fmt.Println("cnt provides:", len(ids) > 0)
	// Output:
	// descriptor found: true ops: 1
	// counter conforms: true
	// cnt provides: true
}

// ExampleMetaSpace_Interception installs and removes a named Around chain
// on a live binding through the interception meta-model.
func ExampleMetaSpace_Interception() {
	ctx := context.Background()
	sys, err := netkit.NewBlueprint("icept").
		Add("a", router.TypeCounter, nil).
		Add("b", router.TypeDropper, nil).
		Pipe("a", "b").
		Build(ctx)
	if err != nil {
		panic(err)
	}
	defer func() { _ = sys.Close(ctx) }()
	ic := sys.Meta().Interception()

	var seen int
	_ = ic.Install("a", "out", "audit", netkit.PrePost(
		func(op string, args []any) { seen++ }, nil))
	if err := pump(sys.Capsule(), "a", 5); err != nil {
		panic(err)
	}
	chain, _ := ic.Chain("a", "out")
	fmt.Println("chain:", chain, "observed:", seen)
	_ = ic.Remove("a", "out", "audit")
	chain, _ = ic.Chain("a", "out")
	fmt.Println("after remove:", len(chain))
	// Output:
	// chain: [audit] observed: 5
	// after remove: 0
}

// ExampleMetaSpace_Resources accounts work through the capsule's
// resources meta-model.
func ExampleMetaSpace_Resources() {
	ctx := context.Background()
	sys, err := netkit.NewBlueprint("res").Build(ctx)
	if err != nil {
		panic(err)
	}
	defer func() { _ = sys.Close(ctx) }()
	mgr := sys.Meta().Resources()

	task, err := mgr.CreateTask(resources.TaskSpec{Name: "flows", MemBudget: 1 << 10})
	if err != nil {
		panic(err)
	}
	fmt.Println("charge ok:", task.ChargeMemory(512) == nil)
	fmt.Println("over budget:", task.ChargeMemory(1024) != nil)
	fmt.Println("tasks:", mgr.Tasks())
	// Output:
	// charge ok: true
	// over budget: true
	// tasks: [flows]
}
