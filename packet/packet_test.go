package packet

import (
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	srcA = netip.MustParseAddr("10.0.0.1")
	dstA = netip.MustParseAddr("192.168.1.9")
	src6 = netip.MustParseAddr("2001:db8::1")
	dst6 = netip.MustParseAddr("2001:db8::9")
)

func TestIPv4RoundTrip(t *testing.T) {
	in := IPv4{
		IHL: 20, TOS: 0x2e, TotalLen: 60, ID: 0xbeef, Flags: 2, FragOff: 0,
		TTL: 64, Protocol: ProtoUDP, Src: srcA, Dst: dstA,
	}
	b := make([]byte, 60)
	if err := in.Marshal(b); err != nil {
		t.Fatal(err)
	}
	if err := ValidateIPv4Checksum(b); err != nil {
		t.Fatalf("checksum after marshal: %v", err)
	}
	out, err := ParseIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.TOS != in.TOS || out.TotalLen != in.TotalLen || out.ID != in.ID ||
		out.Flags != in.Flags || out.TTL != in.TTL || out.Protocol != in.Protocol ||
		out.Src != in.Src || out.Dst != in.Dst {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}

func TestIPv4ParseErrors(t *testing.T) {
	if _, err := ParseIPv4(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short: %v", err)
	}
	b := make([]byte, 20)
	b[0] = 0x60 // version 6
	if _, err := ParseIPv4(b); !errors.Is(err, ErrVersion) {
		t.Fatalf("version: %v", err)
	}
	b[0] = 0x43 // IHL 12 bytes < 20
	if _, err := ParseIPv4(b); !errors.Is(err, ErrHeaderLength) {
		t.Fatalf("ihl: %v", err)
	}
	b[0] = 0x4f // IHL 60 > len 20
	if _, err := ParseIPv4(b); !errors.Is(err, ErrTruncated) {
		t.Fatalf("ihl overrun: %v", err)
	}
	b[0] = 0x45
	b[3] = 10 // total length 10 < IHL
	if _, err := ParseIPv4(b); !errors.Is(err, ErrHeaderLength) {
		t.Fatalf("total < ihl: %v", err)
	}
	b[2], b[3] = 0x01, 0x00 // total length 256 > buffer
	if _, err := ParseIPv4(b); !errors.Is(err, ErrTruncated) {
		t.Fatalf("total overrun: %v", err)
	}
}

func TestIPv4MarshalErrors(t *testing.T) {
	h := IPv4{Src: srcA, Dst: dstA, TotalLen: 20}
	if err := h.Marshal(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short buffer: %v", err)
	}
	h.IHL = 22
	if err := h.Marshal(make([]byte, 60)); !errors.Is(err, ErrHeaderLength) {
		t.Fatalf("bad ihl: %v", err)
	}
	h.IHL = 20
	h.Src = src6
	if err := h.Marshal(make([]byte, 20)); !errors.Is(err, ErrVersion) {
		t.Fatalf("v6 src: %v", err)
	}
}

func TestIPv4Options(t *testing.T) {
	h := IPv4{IHL: 24, TotalLen: 24, TTL: 1, Protocol: ProtoICMP, Src: srcA, Dst: dstA}
	b := make([]byte, 24)
	if err := h.Marshal(b); err != nil {
		t.Fatal(err)
	}
	if err := ValidateIPv4Checksum(b); err != nil {
		t.Fatal(err)
	}
	out, err := ParseIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.IHL != 24 {
		t.Fatalf("ihl = %d", out.IHL)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	b, err := BuildUDP4(srcA, dstA, 1000, 2000, 64, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateIPv4Checksum(b); err != nil {
		t.Fatal(err)
	}
	b[16] ^= 0xff // corrupt dst address
	if err := ValidateIPv4Checksum(b); !errors.Is(err, ErrChecksum) {
		t.Fatalf("want ErrChecksum, got %v", err)
	}
}

func TestDecrementTTLIncrementalChecksum(t *testing.T) {
	b, err := BuildUDP4(srcA, dstA, 1, 2, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 62; i++ {
		if err := DecrementTTL(b); err != nil {
			t.Fatalf("decrement %d: %v", i, err)
		}
		if err := ValidateIPv4Checksum(b); err != nil {
			t.Fatalf("checksum invalid after decrement %d: %v", i, err)
		}
	}
	h, _ := ParseIPv4(b)
	if h.TTL != 2 {
		t.Fatalf("ttl = %d", h.TTL)
	}
	if err := DecrementTTL(b); err != nil { // 2 -> 1
		t.Fatal(err)
	}
	if err := DecrementTTL(b); !errors.Is(err, ErrTTLExpired) { // 1 -> 0
		t.Fatalf("want ErrTTLExpired at zero, got %v", err)
	}
	if err := DecrementTTL(b); !errors.Is(err, ErrTTLExpired) { // already 0
		t.Fatalf("want ErrTTLExpired on zero, got %v", err)
	}
}

func TestIPv6RoundTrip(t *testing.T) {
	in := IPv6{
		TrafficClass: 0xb8, FlowLabel: 0xabcde, PayloadLen: 8,
		NextHeader: ProtoUDP, HopLimit: 7, Src: src6, Dst: dst6,
	}
	b := make([]byte, IPv6HeaderLen+8)
	if err := in.Marshal(b); err != nil {
		t.Fatal(err)
	}
	out, err := ParseIPv6(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", out, in)
	}
}

func TestIPv6Errors(t *testing.T) {
	if _, err := ParseIPv6(make([]byte, 39)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short: %v", err)
	}
	b := make([]byte, 40)
	b[0] = 0x45
	if _, err := ParseIPv6(b); !errors.Is(err, ErrVersion) {
		t.Fatalf("version: %v", err)
	}
	b[0] = 0x60
	b[5] = 10 // payload 10 but no bytes follow
	if _, err := ParseIPv6(b); !errors.Is(err, ErrTruncated) {
		t.Fatalf("payload overrun: %v", err)
	}
	h := IPv6{Src: srcA, Dst: dst6}
	if err := h.Marshal(make([]byte, 40)); !errors.Is(err, ErrVersion) {
		t.Fatalf("v4 src: %v", err)
	}
	if err := (IPv6{Src: src6, Dst: dst6}).Marshal(make([]byte, 39)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short marshal: %v", err)
	}
}

func TestDecrementHopLimit(t *testing.T) {
	b, err := BuildUDP6(src6, dst6, 5, 6, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := DecrementHopLimit(b); err != nil {
		t.Fatal(err)
	}
	if err := DecrementHopLimit(b); !errors.Is(err, ErrTTLExpired) {
		t.Fatalf("want expiry, got %v", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	in := UDP{SrcPort: 5353, DstPort: 53, Length: 8, Checksum: 0x1234}
	b := make([]byte, 8)
	if err := in.Marshal(b); err != nil {
		t.Fatal(err)
	}
	out, err := ParseUDP(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("mismatch %+v vs %+v", out, in)
	}
	if _, err := ParseUDP(b[:4]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short: %v", err)
	}
	b[4], b[5] = 0, 4 // length 4 < 8
	if _, err := ParseUDP(b); !errors.Is(err, ErrHeaderLength) {
		t.Fatalf("bad length: %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	in := TCP{SrcPort: 80, DstPort: 51000, Seq: 1e9, Ack: 42, DataOff: 20,
		Flags: TCPSyn | TCPAck, Window: 29200}
	b := make([]byte, 20)
	if err := in.Marshal(b); err != nil {
		t.Fatal(err)
	}
	out, err := ParseTCP(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("mismatch %+v vs %+v", out, in)
	}
	if _, err := ParseTCP(b[:10]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short: %v", err)
	}
	b[12] = 3 << 4 // data offset 12 < 20
	if _, err := ParseTCP(b); !errors.Is(err, ErrHeaderLength) {
		t.Fatalf("bad offset: %v", err)
	}
}

func TestFlowExtraction(t *testing.T) {
	b, err := BuildUDP4(srcA, dstA, 1111, 2222, 64, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	k, err := Flow(b)
	if err != nil {
		t.Fatal(err)
	}
	want := FlowKey{Src: srcA, Dst: dstA, Proto: ProtoUDP, SrcPort: 1111, DstPort: 2222}
	if k != want {
		t.Fatalf("flow = %+v", k)
	}

	b6, err := BuildUDP6(src6, dst6, 7, 8, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	k6, err := Flow(b6)
	if err != nil {
		t.Fatal(err)
	}
	if k6.Src != src6 || k6.DstPort != 8 {
		t.Fatalf("flow6 = %+v", k6)
	}

	tcp, err := BuildTCP4(srcA, dstA, 443, 50000, 64, TCPSyn, nil)
	if err != nil {
		t.Fatal(err)
	}
	kt, err := Flow(tcp)
	if err != nil {
		t.Fatal(err)
	}
	if kt.Proto != ProtoTCP || kt.SrcPort != 443 {
		t.Fatalf("tcp flow = %+v", kt)
	}

	if _, err := Flow([]byte{0x00}); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: %v", err)
	}
	if _, err := Flow(nil); !errors.Is(err, ErrVersion) {
		t.Fatalf("empty: %v", err)
	}
}

func TestFlowNonTransportProto(t *testing.T) {
	total := IPv4HeaderLen + 8
	b := make([]byte, total)
	h := IPv4{IHL: 20, TotalLen: total, TTL: 64, Protocol: ProtoICMP, Src: srcA, Dst: dstA}
	if err := h.Marshal(b); err != nil {
		t.Fatal(err)
	}
	k, err := Flow(b)
	if err != nil {
		t.Fatal(err)
	}
	if k.SrcPort != 0 || k.DstPort != 0 {
		t.Fatalf("icmp flow has ports: %+v", k)
	}
}

func TestVersionNibble(t *testing.T) {
	if Version(nil) != 0 {
		t.Fatal("empty version")
	}
	if Version([]byte{0x45}) != 4 || Version([]byte{0x60}) != 6 {
		t.Fatal("version nibble")
	}
}

func TestFlowKeyString(t *testing.T) {
	k := FlowKey{Src: srcA, Dst: dstA, Proto: ProtoUDP, SrcPort: 1, DstPort: 2}
	if s := k.String(); s == "" {
		t.Fatal("empty string")
	}
}

// Property: the Internet checksum of any buffer with its checksum field
// folded in verifies to zero — Marshal/Validate agree for arbitrary headers.
func TestQuickChecksumInvolution(t *testing.T) {
	check := func(tos, ttl, proto uint8, id uint16, payloadLen uint8) bool {
		total := IPv4HeaderLen + int(payloadLen)
		b := make([]byte, total)
		h := IPv4{
			IHL: 20, TOS: tos, TotalLen: total, ID: id, TTL: ttl,
			Protocol: proto, Src: srcA, Dst: dstA,
		}
		if err := h.Marshal(b); err != nil {
			return false
		}
		return ValidateIPv4Checksum(b) == nil
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: parse(marshal(h)) is identity for all valid IPv6 headers.
func TestQuickIPv6RoundTrip(t *testing.T) {
	check := func(tc uint8, fl uint32, nh, hl uint8, plen uint8) bool {
		h := IPv6{
			TrafficClass: tc, FlowLabel: fl & 0xfffff, PayloadLen: int(plen),
			NextHeader: nh, HopLimit: hl, Src: src6, Dst: dst6,
		}
		b := make([]byte, IPv6HeaderLen+int(plen))
		if err := h.Marshal(b); err != nil {
			return false
		}
		out, err := ParseIPv6(b)
		return err == nil && out == h
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: DecrementTTL preserves checksum validity for every starting TTL.
func TestQuickTTLChecksumPreserved(t *testing.T) {
	check := func(ttl uint8) bool {
		if ttl < 2 {
			return true
		}
		b, err := BuildUDP4(srcA, dstA, 9, 9, ttl, nil)
		if err != nil {
			return false
		}
		if err := DecrementTTL(b); err != nil {
			return false
		}
		return ValidateIPv4Checksum(b) == nil
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
