// Package packet provides the wire-format substrate used by the Router CF:
// IPv4 and IPv6 header parsing and construction, transport headers (UDP,
// TCP — the fields the in-band functions need), Internet checksums, and
// flow identification. All parsing is allocation-free over caller-owned
// byte slices so it can run on the in-band fast path.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Sentinel errors.
var (
	// ErrTruncated indicates a packet shorter than its headers claim.
	ErrTruncated = errors.New("packet: truncated")
	// ErrVersion indicates an unsupported IP version nibble.
	ErrVersion = errors.New("packet: unsupported IP version")
	// ErrHeaderLength indicates a malformed IHL or payload length field.
	ErrHeaderLength = errors.New("packet: bad header length")
	// ErrChecksum indicates a failed IPv4 header checksum validation.
	ErrChecksum = errors.New("packet: bad checksum")
	// ErrTTLExpired indicates a TTL/hop-limit that reached zero.
	ErrTTLExpired = errors.New("packet: ttl expired")
)

// IP protocol numbers used by the router components.
const (
	ProtoICMP   = 1
	ProtoTCP    = 6
	ProtoUDP    = 17
	ProtoICMPv6 = 58
)

// Version returns the IP version nibble of a raw packet, or 0 if empty.
func Version(b []byte) int {
	if len(b) == 0 {
		return 0
	}
	return int(b[0] >> 4)
}

// ---------------------------------------------------------------------------
// IPv4

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// IPv4 is a parsed IPv4 header. Fields mirror RFC 791; addresses use
// netip.Addr for value semantics.
type IPv4 struct {
	IHL      int // header length in bytes
	TOS      uint8
	TotalLen int
	ID       uint16
	Flags    uint8 // 3 bits
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst netip.Addr
}

// ParseIPv4 parses an IPv4 header from b without validating the checksum
// (use ValidateIPv4Checksum for that, mirroring the paper's separate
// "checksum validator" in-band component).
func ParseIPv4(b []byte) (IPv4, error) {
	var h IPv4
	if len(b) < IPv4HeaderLen {
		return h, fmt.Errorf("ipv4: %d bytes: %w", len(b), ErrTruncated)
	}
	if v := b[0] >> 4; v != 4 {
		return h, fmt.Errorf("ipv4: version %d: %w", v, ErrVersion)
	}
	h.IHL = int(b[0]&0x0f) * 4
	if h.IHL < IPv4HeaderLen {
		return h, fmt.Errorf("ipv4: ihl %d: %w", h.IHL, ErrHeaderLength)
	}
	if len(b) < h.IHL {
		return h, fmt.Errorf("ipv4: ihl %d > %d bytes: %w", h.IHL, len(b), ErrTruncated)
	}
	h.TOS = b[1]
	h.TotalLen = int(binary.BigEndian.Uint16(b[2:4]))
	if h.TotalLen < h.IHL {
		return h, fmt.Errorf("ipv4: total length %d < ihl %d: %w", h.TotalLen, h.IHL, ErrHeaderLength)
	}
	if h.TotalLen > len(b) {
		return h, fmt.Errorf("ipv4: total length %d > %d bytes: %w", h.TotalLen, len(b), ErrTruncated)
	}
	h.ID = binary.BigEndian.Uint16(b[4:6])
	ff := binary.BigEndian.Uint16(b[6:8])
	h.Flags = uint8(ff >> 13)
	h.FragOff = ff & 0x1fff
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	h.Src = netip.AddrFrom4([4]byte(b[12:16]))
	h.Dst = netip.AddrFrom4([4]byte(b[16:20]))
	return h, nil
}

// Marshal writes the header into b, which must be at least IHL bytes
// (options beyond 20 bytes are zero-filled), computing the checksum.
func (h IPv4) Marshal(b []byte) error {
	ihl := h.IHL
	if ihl == 0 {
		ihl = IPv4HeaderLen
	}
	if ihl < IPv4HeaderLen || ihl%4 != 0 || ihl > 60 {
		return fmt.Errorf("ipv4: marshal ihl %d: %w", ihl, ErrHeaderLength)
	}
	if len(b) < ihl {
		return fmt.Errorf("ipv4: marshal into %d bytes: %w", len(b), ErrTruncated)
	}
	if !h.Src.Is4() || !h.Dst.Is4() {
		return fmt.Errorf("ipv4: marshal non-v4 address: %w", ErrVersion)
	}
	b[0] = 0x40 | uint8(ihl/4)
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(h.TotalLen))
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = h.Protocol
	b[10], b[11] = 0, 0
	src, dst := h.Src.As4(), h.Dst.As4()
	copy(b[12:16], src[:])
	copy(b[16:20], dst[:])
	for i := IPv4HeaderLen; i < ihl; i++ {
		b[i] = 0
	}
	cs := Checksum(b[:ihl])
	binary.BigEndian.PutUint16(b[10:12], cs)
	return nil
}

// ValidateIPv4Checksum verifies the header checksum over b's IHL bytes.
func ValidateIPv4Checksum(b []byte) error {
	if len(b) < IPv4HeaderLen {
		return fmt.Errorf("ipv4: checksum: %w", ErrTruncated)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return fmt.Errorf("ipv4: checksum ihl %d: %w", ihl, ErrHeaderLength)
	}
	if Checksum(b[:ihl]) != 0 {
		return ErrChecksum
	}
	return nil
}

// DecrementTTL decrements the TTL in place and incrementally updates the
// checksum per RFC 1141. It returns ErrTTLExpired if the TTL is already 0
// or reaches 0 (the caller decides whether 0-after-decrement forwards).
func DecrementTTL(b []byte) error {
	if len(b) < IPv4HeaderLen {
		return fmt.Errorf("ipv4: ttl: %w", ErrTruncated)
	}
	if b[8] == 0 {
		return ErrTTLExpired
	}
	b[8]--
	// RFC 1141 incremental update: checksum += 0x0100 (TTL is the high byte
	// of the 16-bit word at offset 8), with end-around carry.
	cs := binary.BigEndian.Uint16(b[10:12])
	sum := uint32(cs) + 0x0100
	sum = (sum & 0xffff) + (sum >> 16)
	binary.BigEndian.PutUint16(b[10:12], uint16(sum))
	if b[8] == 0 {
		return ErrTTLExpired
	}
	return nil
}

// ---------------------------------------------------------------------------
// IPv6

// IPv6HeaderLen is the fixed IPv6 header length.
const IPv6HeaderLen = 40

// IPv6 is a parsed fixed IPv6 header.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32
	PayloadLen   int
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     netip.Addr
}

// ParseIPv6 parses the fixed header from b.
func ParseIPv6(b []byte) (IPv6, error) {
	var h IPv6
	if len(b) < IPv6HeaderLen {
		return h, fmt.Errorf("ipv6: %d bytes: %w", len(b), ErrTruncated)
	}
	if v := b[0] >> 4; v != 6 {
		return h, fmt.Errorf("ipv6: version %d: %w", v, ErrVersion)
	}
	h.TrafficClass = b[0]<<4 | b[1]>>4
	h.FlowLabel = uint32(b[1]&0x0f)<<16 | uint32(b[2])<<8 | uint32(b[3])
	h.PayloadLen = int(binary.BigEndian.Uint16(b[4:6]))
	if IPv6HeaderLen+h.PayloadLen > len(b) {
		return h, fmt.Errorf("ipv6: payload %d > %d bytes: %w", h.PayloadLen, len(b)-IPv6HeaderLen, ErrTruncated)
	}
	h.NextHeader = b[6]
	h.HopLimit = b[7]
	h.Src = netip.AddrFrom16([16]byte(b[8:24]))
	h.Dst = netip.AddrFrom16([16]byte(b[24:40]))
	return h, nil
}

// Marshal writes the fixed header into b.
func (h IPv6) Marshal(b []byte) error {
	if len(b) < IPv6HeaderLen {
		return fmt.Errorf("ipv6: marshal into %d bytes: %w", len(b), ErrTruncated)
	}
	if !h.Src.Is6() || h.Src.Is4In6() || !h.Dst.Is6() || h.Dst.Is4In6() {
		return fmt.Errorf("ipv6: marshal non-v6 address: %w", ErrVersion)
	}
	b[0] = 0x60 | h.TrafficClass>>4
	b[1] = h.TrafficClass<<4 | uint8(h.FlowLabel>>16&0x0f)
	b[2] = uint8(h.FlowLabel >> 8)
	b[3] = uint8(h.FlowLabel)
	binary.BigEndian.PutUint16(b[4:6], uint16(h.PayloadLen))
	b[6] = h.NextHeader
	b[7] = h.HopLimit
	src, dst := h.Src.As16(), h.Dst.As16()
	copy(b[8:24], src[:])
	copy(b[24:40], dst[:])
	return nil
}

// DecrementHopLimit decrements the IPv6 hop limit in place.
func DecrementHopLimit(b []byte) error {
	if len(b) < IPv6HeaderLen {
		return fmt.Errorf("ipv6: hop limit: %w", ErrTruncated)
	}
	if b[7] == 0 {
		return ErrTTLExpired
	}
	b[7]--
	if b[7] == 0 {
		return ErrTTLExpired
	}
	return nil
}

// ---------------------------------------------------------------------------
// Transport

// UDPHeaderLen is the UDP header length.
const UDPHeaderLen = 8

// UDP is a parsed UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           int
	Checksum         uint16
}

// ParseUDP parses a UDP header.
func ParseUDP(b []byte) (UDP, error) {
	var h UDP
	if len(b) < UDPHeaderLen {
		return h, fmt.Errorf("udp: %d bytes: %w", len(b), ErrTruncated)
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Length = int(binary.BigEndian.Uint16(b[4:6]))
	h.Checksum = binary.BigEndian.Uint16(b[6:8])
	if h.Length < UDPHeaderLen || h.Length > len(b) {
		return h, fmt.Errorf("udp: length %d: %w", h.Length, ErrHeaderLength)
	}
	return h, nil
}

// Marshal writes the UDP header into b.
func (h UDP) Marshal(b []byte) error {
	if len(b) < UDPHeaderLen {
		return fmt.Errorf("udp: marshal into %d bytes: %w", len(b), ErrTruncated)
	}
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(h.Length))
	binary.BigEndian.PutUint16(b[6:8], h.Checksum)
	return nil
}

// TCPMinHeaderLen is the minimum TCP header length.
const TCPMinHeaderLen = 20

// TCP holds the TCP header fields the router's in-band functions use.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOff          int // bytes
	Flags            uint8
	Window           uint16
}

// TCP flag bits.
const (
	TCPFin = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// ParseTCP parses a TCP header.
func ParseTCP(b []byte) (TCP, error) {
	var h TCP
	if len(b) < TCPMinHeaderLen {
		return h, fmt.Errorf("tcp: %d bytes: %w", len(b), ErrTruncated)
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Seq = binary.BigEndian.Uint32(b[4:8])
	h.Ack = binary.BigEndian.Uint32(b[8:12])
	h.DataOff = int(b[12]>>4) * 4
	if h.DataOff < TCPMinHeaderLen || h.DataOff > len(b) {
		return h, fmt.Errorf("tcp: data offset %d: %w", h.DataOff, ErrHeaderLength)
	}
	h.Flags = b[13] & 0x3f
	h.Window = binary.BigEndian.Uint16(b[14:16])
	return h, nil
}

// Marshal writes a minimal (20-byte, no options) TCP header into b.
func (h TCP) Marshal(b []byte) error {
	if len(b) < TCPMinHeaderLen {
		return fmt.Errorf("tcp: marshal into %d bytes: %w", len(b), ErrTruncated)
	}
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint32(b[4:8], h.Seq)
	binary.BigEndian.PutUint32(b[8:12], h.Ack)
	b[12] = 5 << 4
	b[13] = h.Flags & 0x3f
	binary.BigEndian.PutUint16(b[14:16], h.Window)
	b[16], b[17], b[18], b[19] = 0, 0, 0, 0
	return nil
}

// ---------------------------------------------------------------------------
// Checksum

// Checksum computes the RFC 1071 Internet checksum of b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// ---------------------------------------------------------------------------
// Flows

// FlowKey is the classic 5-tuple used for per-flow processing (stratum 3
// programs "act on pre-selected packet flows").
type FlowKey struct {
	Src, Dst         netip.Addr
	Proto            uint8
	SrcPort, DstPort uint16
}

// String implements fmt.Stringer.
func (k FlowKey) String() string {
	return fmt.Sprintf("%d %s:%d->%s:%d", k.Proto, k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// Flow extracts the 5-tuple from a raw IP packet. Port fields are zero for
// non-TCP/UDP protocols.
func Flow(b []byte) (FlowKey, error) {
	var k FlowKey
	switch Version(b) {
	case 4:
		h, err := ParseIPv4(b)
		if err != nil {
			return k, err
		}
		k.Src, k.Dst, k.Proto = h.Src, h.Dst, h.Protocol
		payload := b[h.IHL:h.TotalLen]
		fillPorts(&k, payload)
	case 6:
		h, err := ParseIPv6(b)
		if err != nil {
			return k, err
		}
		k.Src, k.Dst, k.Proto = h.Src, h.Dst, h.NextHeader
		fillPorts(&k, b[IPv6HeaderLen:])
	default:
		return k, fmt.Errorf("flow: version %d: %w", Version(b), ErrVersion)
	}
	return k, nil
}

func fillPorts(k *FlowKey, payload []byte) {
	switch k.Proto {
	case ProtoTCP, ProtoUDP:
		if len(payload) >= 4 {
			k.SrcPort = binary.BigEndian.Uint16(payload[0:2])
			k.DstPort = binary.BigEndian.Uint16(payload[2:4])
		}
	}
}

// ---------------------------------------------------------------------------
// Builders (used by tests, examples and the traffic generator)

// BuildUDP4 constructs a complete IPv4/UDP packet with the given payload.
func BuildUDP4(src, dst netip.Addr, srcPort, dstPort uint16, ttl uint8, payload []byte) ([]byte, error) {
	total := IPv4HeaderLen + UDPHeaderLen + len(payload)
	b := make([]byte, total)
	ip := IPv4{
		IHL: IPv4HeaderLen, TotalLen: total, TTL: ttl,
		Protocol: ProtoUDP, Src: src, Dst: dst,
	}
	if err := ip.Marshal(b); err != nil {
		return nil, err
	}
	udp := UDP{SrcPort: srcPort, DstPort: dstPort, Length: UDPHeaderLen + len(payload)}
	if err := udp.Marshal(b[IPv4HeaderLen:]); err != nil {
		return nil, err
	}
	copy(b[IPv4HeaderLen+UDPHeaderLen:], payload)
	return b, nil
}

// BuildTCP4 constructs a complete IPv4/TCP packet (no TCP options).
func BuildTCP4(src, dst netip.Addr, srcPort, dstPort uint16, ttl, flags uint8, payload []byte) ([]byte, error) {
	total := IPv4HeaderLen + TCPMinHeaderLen + len(payload)
	b := make([]byte, total)
	ip := IPv4{
		IHL: IPv4HeaderLen, TotalLen: total, TTL: ttl,
		Protocol: ProtoTCP, Src: src, Dst: dst,
	}
	if err := ip.Marshal(b); err != nil {
		return nil, err
	}
	tcp := TCP{SrcPort: srcPort, DstPort: dstPort, Flags: flags, Window: 65535}
	if err := tcp.Marshal(b[IPv4HeaderLen:]); err != nil {
		return nil, err
	}
	copy(b[IPv4HeaderLen+TCPMinHeaderLen:], payload)
	return b, nil
}

// BuildUDP6 constructs a complete IPv6/UDP packet.
func BuildUDP6(src, dst netip.Addr, srcPort, dstPort uint16, hopLimit uint8, payload []byte) ([]byte, error) {
	b := make([]byte, IPv6HeaderLen+UDPHeaderLen+len(payload))
	ip := IPv6{
		PayloadLen: UDPHeaderLen + len(payload), NextHeader: ProtoUDP,
		HopLimit: hopLimit, Src: src, Dst: dst,
	}
	if err := ip.Marshal(b); err != nil {
		return nil, err
	}
	udp := UDP{SrcPort: srcPort, DstPort: dstPort, Length: UDPHeaderLen + len(payload)}
	if err := udp.Marshal(b[IPv6HeaderLen:]); err != nil {
		return nil, err
	}
	copy(b[IPv6HeaderLen+UDPHeaderLen:], payload)
	return b, nil
}
