package router

import (
	"errors"
	"fmt"

	"netkit/core"
	"netkit/internal/buffers"
)

// This file is the hub of the batched fast path (DESIGN.md §4): the
// IPacketPushBatch capability interface, the ForwardBatch fallback shim,
// and the pooled []*Packet scratch batches that keep the steady state
// allocation-free.
//
// Ownership contract: a PushBatch callee takes ownership of every Packet
// in the batch (exactly as Push does for one packet) but NOT of the batch
// slice itself. The slice remains the caller's; the callee must not retain
// it — or any sub-slice of it — after returning. Components that buffer
// packets (queues) copy the pointers out; everyone else forwards within
// the call. This is what lets callers recycle batches through GetBatch/
// PutBatch without handshaking.

// IPacketPushBatch is the batched fast-path variant of IPacketPush. It is
// a capability, not a separate binding contract: bindings are still made
// on IPacketPushID, and each hop discovers its downstream's batch support
// with a type assertion (use ForwardBatch, which does exactly that). A
// component that implements PushBatch must process packets in slice order
// and must also accept single packets via Push.
type IPacketPushBatch interface {
	IPacketPush
	// PushBatch delivers the packets in order. The callee takes ownership
	// of the packets but must not retain the slice after returning.
	PushBatch(batch []*Packet) error
}

// BatchError reports a batch crossing in which Failed packets could not be
// delivered; Err is the first underlying error. It is how the batch path
// keeps per-packet error cardinality: a per-packet caller counts one errs
// per failing packet, so a batch callee that fails k of n packets must say
// k, not 1. A plain (non-BatchError) error from a batch crossing means the
// whole batch failed. errors.Is/As reach Err through Unwrap.
type BatchError struct {
	Failed int
	Err    error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("router: %d packet(s) failed: %v", e.Failed, e.Err)
}

// Unwrap exposes the first underlying error to errors.Is/As.
func (e *BatchError) Unwrap() error { return e.Err }

// FailedPackets interprets a batch-crossing error as a packet count out of
// n: nil means none, a BatchError carries its own count (clamped to [0,n]),
// and any other error means the whole crossing — all n — failed.
func FailedPackets(err error, n int) int {
	if err == nil {
		return 0
	}
	var be *BatchError
	if errors.As(err, &be) {
		if be.Failed < 0 {
			return 0
		}
		if be.Failed > n {
			return n
		}
		return be.Failed
	}
	return n
}

// ForwardBatch delivers batch to dst, using the batched fast path when dst
// implements IPacketPushBatch and falling back to one Push per packet
// otherwise. It is the generic adoption shim: a pipeline may mix batch-
// aware and per-packet components freely, and ForwardBatch re-forms the
// fast path wherever both sides support it. Later packets are still
// delivered after a failure (the absorb-and-continue discipline of the
// data path); failures are reported as a BatchError so upstream accounting
// stays per-packet-exact.
func ForwardBatch(dst IPacketPush, batch []*Packet) error {
	if bp, ok := dst.(IPacketPushBatch); ok {
		return bp.PushBatch(batch)
	}
	failed := 0
	var firstErr error
	for _, p := range batch {
		if err := dst.Push(p); err != nil {
			failed++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if failed == 0 {
		return nil
	}
	return &BatchError{Failed: failed, Err: firstErr}
}

// PacketCount reports how many packets an intercepted operation carries:
// len(batch) for a PushBatch crossing, 1 for any other operation. Audit-
// style interceptors use it so a batch of 32 packets counts as 32
// observations even though the chain wrapped the crossing once.
func PacketCount(op string, args []any) int {
	if op == "PushBatch" && len(args) == 1 {
		if b, ok := args[0].([]*Packet); ok {
			return len(b)
		}
	}
	return 1
}

// batchCap is the capacity of pooled packet batches; large enough for the
// biggest batch size the benches drive (128) without reallocation.
const batchCap = 256

var packetBatches = buffers.NewBatchPool[*Packet](batchCap)

// GetBatch returns a zero-length pooled packet batch. Return it with
// PutBatch once every packet in it has been handed off.
func GetBatch() []*Packet { return packetBatches.Get() }

// PutBatch recycles a batch obtained from GetBatch. The caller must have
// relinquished ownership of the packets; PutBatch clears the slice so the
// pool never pins packet memory.
func PutBatch(b []*Packet) { packetBatches.Put(b) }

// forwardBatch pushes batch to the receptacle target, accounting the
// outcome exactly as forward does per packet; an unbound receptacle drops
// (and releases) the whole batch. Errors are per-packet-exact: the failed
// count is read from the downstream's BatchError (whole batch for a plain
// error), errs counts every failing packet, out counts the rest, and the
// returned error is normalised to a BatchError so the next hop up accounts
// the same count. Downstream errors are structural — absent from the
// standard components, which absorb and count problems locally — so this
// path only fires for misbehaving plug-ins, but when it fires the batched
// and per-packet paths now agree counter for counter.
func (e *elementCounters) forwardBatch(out *core.Receptacle[IPacketPush], batch []*Packet) error {
	if len(batch) == 0 {
		return nil
	}
	next, ok := out.Get()
	if !ok {
		e.dropped.Add(uint64(len(batch)))
		for _, p := range batch {
			p.Release()
		}
		return nil
	}
	err := ForwardBatch(next, batch)
	if err == nil {
		e.out.Add(uint64(len(batch)))
		return nil
	}
	failed := FailedPackets(err, len(batch))
	e.errs.Add(uint64(failed))
	e.out.Add(uint64(len(batch) - failed))
	if _, ok := err.(*BatchError); !ok {
		err = &BatchError{Failed: failed, Err: err}
	}
	return err
}

// forwardRuns is the shared drop-or-forward scan of the batched header
// processors and the shaper: packets rejected by keep are dropped (counted
// and released), and maximal surviving runs — sub-slices of batch, so no
// copying — are forwarded. keep may mutate the packet (TTL decrement) and
// is responsible for its own specialised drop counters.
func (e *elementCounters) forwardRuns(out *core.Receptacle[IPacketPush], batch []*Packet, keep func(*Packet) bool) error {
	var agg batchErrAgg
	run := 0
	for i, p := range batch {
		if !keep(p) {
			agg.note(e.forwardBatch(out, batch[run:i]), i-run)
			e.dropped.Add(1)
			p.Release()
			run = i + 1
		}
	}
	agg.note(e.forwardBatch(out, batch[run:]), len(batch)-run)
	return agg.err()
}

// batchErrAgg folds the per-run errors of a split batch crossing into one
// BatchError whose Failed is the total failing-packet count, so callers
// see the same cardinality whether the batch crossed whole or in runs.
type batchErrAgg struct {
	failed   int
	firstErr error
}

func (a *batchErrAgg) note(err error, n int) {
	if err == nil {
		return
	}
	a.failed += FailedPackets(err, n)
	if a.firstErr == nil {
		if be, ok := err.(*BatchError); ok && be.Err != nil {
			a.firstErr = be.Err
		} else {
			a.firstErr = err
		}
	}
}

func (a *batchErrAgg) err() error {
	if a.failed == 0 {
		return nil
	}
	return &BatchError{Failed: a.failed, Err: a.firstErr}
}

// splitRuns is the shared demultiplexing scan of the batched classifier
// and protocol recogniser: each packet resolves to a target receptacle
// (nil = drop), and maximal same-target runs are forwarded as sub-slices
// of batch. Per-output order is exactly the per-packet path's.
func (e *elementCounters) splitRuns(batch []*Packet, target func(*Packet) *core.Receptacle[IPacketPush]) error {
	if len(batch) == 0 {
		return nil
	}
	var agg batchErrAgg
	flush := func(t *core.Receptacle[IPacketPush], seg []*Packet) {
		if len(seg) == 0 {
			return
		}
		if t == nil {
			e.dropped.Add(uint64(len(seg)))
			for _, p := range seg {
				p.Release()
			}
			return
		}
		agg.note(e.forwardBatch(t, seg), len(seg))
	}
	run, cur := 0, target(batch[0])
	for i := 1; i < len(batch); i++ {
		if t := target(batch[i]); t != cur {
			flush(cur, batch[run:i])
			run, cur = i, t
		}
	}
	flush(cur, batch[run:])
	return agg.err()
}
