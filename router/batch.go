package router

import (
	"netkit/core"
	"netkit/internal/buffers"
)

// This file is the hub of the batched fast path (DESIGN.md §4): the
// IPacketPushBatch capability interface, the ForwardBatch fallback shim,
// and the pooled []*Packet scratch batches that keep the steady state
// allocation-free.
//
// Ownership contract: a PushBatch callee takes ownership of every Packet
// in the batch (exactly as Push does for one packet) but NOT of the batch
// slice itself. The slice remains the caller's; the callee must not retain
// it — or any sub-slice of it — after returning. Components that buffer
// packets (queues) copy the pointers out; everyone else forwards within
// the call. This is what lets callers recycle batches through GetBatch/
// PutBatch without handshaking.

// IPacketPushBatch is the batched fast-path variant of IPacketPush. It is
// a capability, not a separate binding contract: bindings are still made
// on IPacketPushID, and each hop discovers its downstream's batch support
// with a type assertion (use ForwardBatch, which does exactly that). A
// component that implements PushBatch must process packets in slice order
// and must also accept single packets via Push.
type IPacketPushBatch interface {
	IPacketPush
	// PushBatch delivers the packets in order. The callee takes ownership
	// of the packets but must not retain the slice after returning.
	PushBatch(batch []*Packet) error
}

// ForwardBatch delivers batch to dst, using the batched fast path when dst
// implements IPacketPushBatch and falling back to one Push per packet
// otherwise. It is the generic adoption shim: a pipeline may mix batch-
// aware and per-packet components freely, and ForwardBatch re-forms the
// fast path wherever both sides support it. The first error is returned;
// later packets are still delivered (matching the absorb-and-continue
// discipline of the data path).
func ForwardBatch(dst IPacketPush, batch []*Packet) error {
	if bp, ok := dst.(IPacketPushBatch); ok {
		return bp.PushBatch(batch)
	}
	var firstErr error
	for _, p := range batch {
		if err := dst.Push(p); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// PacketCount reports how many packets an intercepted operation carries:
// len(batch) for a PushBatch crossing, 1 for any other operation. Audit-
// style interceptors use it so a batch of 32 packets counts as 32
// observations even though the chain wrapped the crossing once.
func PacketCount(op string, args []any) int {
	if op == "PushBatch" && len(args) == 1 {
		if b, ok := args[0].([]*Packet); ok {
			return len(b)
		}
	}
	return 1
}

// batchCap is the capacity of pooled packet batches; large enough for the
// biggest batch size the benches drive (128) without reallocation.
const batchCap = 256

var packetBatches = buffers.NewBatchPool[*Packet](batchCap)

// GetBatch returns a zero-length pooled packet batch. Return it with
// PutBatch once every packet in it has been handed off.
func GetBatch() []*Packet { return packetBatches.Get() }

// PutBatch recycles a batch obtained from GetBatch. The caller must have
// relinquished ownership of the packets; PutBatch clears the slice so the
// pool never pins packet memory.
func PutBatch(b []*Packet) { packetBatches.Put(b) }

// forwardBatch pushes batch to the receptacle target, accounting the
// outcome as forward does per packet; an unbound receptacle drops (and
// releases) the whole batch. Error accounting is batch-granular: a batch
// crossing yields at most one downstream error, so a failing batch counts
// one structural error and forfeits Out accounting for the batch (the
// per-packet path would count per packet). Downstream errors are
// structural — absent from the standard components, which absorb and
// count problems locally — so the divergence is confined to misbehaving
// plug-ins.
func (e *elementCounters) forwardBatch(out *core.Receptacle[IPacketPush], batch []*Packet) error {
	if len(batch) == 0 {
		return nil
	}
	next, ok := out.Get()
	if !ok {
		e.dropped.Add(uint64(len(batch)))
		for _, p := range batch {
			p.Release()
		}
		return nil
	}
	if err := ForwardBatch(next, batch); err != nil {
		e.errs.Add(1)
		return err
	}
	e.out.Add(uint64(len(batch)))
	return nil
}

// forwardRuns is the shared drop-or-forward scan of the batched header
// processors and the shaper: packets rejected by keep are dropped (counted
// and released), and maximal surviving runs — sub-slices of batch, so no
// copying — are forwarded. keep may mutate the packet (TTL decrement) and
// is responsible for its own specialised drop counters.
func (e *elementCounters) forwardRuns(out *core.Receptacle[IPacketPush], batch []*Packet, keep func(*Packet) bool) error {
	var firstErr error
	run := 0
	for i, p := range batch {
		if !keep(p) {
			if err := e.forwardBatch(out, batch[run:i]); err != nil && firstErr == nil {
				firstErr = err
			}
			e.dropped.Add(1)
			p.Release()
			run = i + 1
		}
	}
	if err := e.forwardBatch(out, batch[run:]); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// splitRuns is the shared demultiplexing scan of the batched classifier
// and protocol recogniser: each packet resolves to a target receptacle
// (nil = drop), and maximal same-target runs are forwarded as sub-slices
// of batch. Per-output order is exactly the per-packet path's.
func (e *elementCounters) splitRuns(batch []*Packet, target func(*Packet) *core.Receptacle[IPacketPush]) error {
	if len(batch) == 0 {
		return nil
	}
	var firstErr error
	flush := func(t *core.Receptacle[IPacketPush], seg []*Packet) {
		if len(seg) == 0 {
			return
		}
		if t == nil {
			e.dropped.Add(uint64(len(seg)))
			for _, p := range seg {
				p.Release()
			}
			return
		}
		if err := e.forwardBatch(t, seg); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	run, cur := 0, target(batch[0])
	for i := 1; i < len(batch); i++ {
		if t := target(batch[i]); t != cur {
			flush(cur, batch[run:i])
			run, cur = i, t
		}
	}
	flush(cur, batch[run:])
	return firstErr
}
