package router

import (
	"fmt"
	"strconv"
	"time"

	"netkit/core"
	"netkit/resources"
)

// TokenShaper polices traffic to a byte rate with a burst allowance using
// the resources meta-model's token bucket (the paper's "shapers" in-band
// function class). Non-conforming packets are dropped and counted; pair
// the shaper with an upstream queue for shaping rather than policing.
type TokenShaper struct {
	*core.Base
	elementCounters
	bucket *resources.TokenBucket
	out    *core.Receptacle[IPacketPush]
}

// NewTokenShaper creates a shaper with rate bytes/sec and burst bytes. A
// nil clock uses wall time.
func NewTokenShaper(rate, burst float64, clock func() time.Time) (*TokenShaper, error) {
	bucket, err := resources.NewTokenBucket(rate, burst, clock)
	if err != nil {
		return nil, fmt.Errorf("router: shaper: %w", err)
	}
	s := &TokenShaper{Base: core.NewBase(TypeTokenShaper), bucket: bucket}
	s.out = core.NewReceptacle[IPacketPush](IPacketPushID)
	s.AddReceptacle("out", s.out)
	s.Provide(IPacketPushID, s)
	return s, nil
}

// Push implements IPacketPush.
func (s *TokenShaper) Push(p *Packet) error {
	s.in.Add(1)
	if !s.bucket.Allow(len(p.Data)) {
		s.dropped.Add(1)
		p.Release()
		return nil
	}
	return s.forward(s.out, p)
}

// PushBatch implements IPacketPushBatch: conformance stays per-packet
// (token buckets meter bytes), but conforming runs leave as sub-batches so
// the downstream hand-off is amortised. Under no congestion the whole
// batch departs in one push.
func (s *TokenShaper) PushBatch(batch []*Packet) error {
	s.in.Add(uint64(len(batch)))
	return s.forwardRuns(s.out, batch, func(p *Packet) bool {
		return s.bucket.Allow(len(p.Data))
	})
}

// Stats implements core.IStats, adding the bucket's decision counters and
// the configured rate/burst gauges (the knobs the resources meta-model —
// and therefore the adaptation engine — retunes).
func (s *TokenShaper) Stats() []core.Stat {
	allowed, denied := s.bucket.Stats()
	return append(s.statList(),
		core.C("shaper_allowed", "packets", allowed),
		core.C("shaper_denied", "packets", denied),
		core.G("shaper_rate", "bytes/sec", s.bucket.Rate()),
		core.G("shaper_burst", "bytes", s.bucket.Burst()))
}

// BucketStats reports (allowed, denied) decisions.
func (s *TokenShaper) BucketStats() (allowed, denied uint64) { return s.bucket.Stats() }

// SetRate retunes the shaper's fill rate through the resources meta-model
// (the bucket is the meta-model's bandwidth resource); it is the action
// surface adapt rules use to adapt policing to measured drops.
func (s *TokenShaper) SetRate(rate float64) error { return s.bucket.SetRate(rate) }

// Rate reports the configured fill rate in bytes/sec.
func (s *TokenShaper) Rate() float64 { return s.bucket.Rate() }

func init() {
	core.Components.MustRegister(TypeTokenShaper, func(cfg map[string]string) (core.Component, error) {
		rate, burst := 1e6, 64e3
		if v, ok := cfg["rate"]; ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("router: shaper rate: %w", err)
			}
			rate = f
		}
		if v, ok := cfg["burst"]; ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("router: shaper burst: %w", err)
			}
			burst = f
		}
		return NewTokenShaper(rate, burst, nil)
	})
}
