package router

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Gate is the quiescence primitive HotSwap and the sharded workers rely
// on; these tests pin its contract under contention: Do sections never
// overlap a Pause window, Pause waits out in-flight Do sections, and the
// gate neither deadlocks nor starves under concurrent Do/Pause/Resume
// interleavings.

// TestGateDoExcludesPause proves mutual exclusion: while the gate is
// paused, no Do body runs; every Do entered before Pause completes before
// Pause returns.
func TestGateDoExcludesPause(t *testing.T) {
	var g Gate
	var inDo atomic.Int64
	var paused atomic.Bool

	const workers = 8
	const rounds = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g.Do(func() {
					inDo.Add(1)
					if paused.Load() {
						t.Error("Do body ran while gate paused")
					}
					inDo.Add(-1)
				})
			}
		}()
	}
	for i := 0; i < rounds; i++ {
		g.Pause()
		paused.Store(true)
		if n := inDo.Load(); n != 0 {
			t.Fatalf("round %d: %d Do bodies in flight under Pause", i, n)
		}
		paused.Store(false)
		g.Resume()
	}
	close(stop)
	wg.Wait()
}

// TestGatePauseWaitsForDo proves Pause blocks until a long-running Do
// body finishes.
func TestGatePauseWaitsForDo(t *testing.T) {
	var g Gate
	entered := make(chan struct{})
	release := make(chan struct{})
	doDone := make(chan struct{})
	go func() {
		g.Do(func() {
			close(entered)
			<-release
		})
		close(doDone)
	}()
	<-entered
	pauseDone := make(chan struct{})
	go func() {
		g.Pause()
		close(pauseDone)
	}()
	select {
	case <-pauseDone:
		t.Fatal("Pause returned while a Do body was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-pauseDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Pause never acquired after Do finished")
	}
	<-doDone
	g.Resume()
}

// TestGateInterceptorUnderContention runs the gate in its other role — a
// binding interceptor — while Pause/Resume cycles concurrently: every
// push crosses exactly once, none overlaps a pause window, and the total
// is conserved.
func TestGateInterceptorUnderContention(t *testing.T) {
	var g Gate
	cnt := NewCounter()
	drop := NewDropper()
	c := newCap()
	if err := c.Insert("cnt", cnt); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("drop", drop); err != nil {
		t.Fatal(err)
	}
	b, err := ConnectPush(c, "cnt", "out", "drop")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddInterceptor(g.Interceptor("gate")); err != nil {
		t.Fatal(err)
	}

	const pushers = 4
	const perPusher = 5000
	raw := udpPkt(t, 99, 64).Data
	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPusher; i++ {
				_ = cnt.Push(NewPacket(append([]byte(nil), raw...)))
			}
		}()
	}
	cycles := make(chan struct{})
	go func() {
		defer close(cycles)
		for i := 0; i < 200; i++ {
			g.Pause()
			// The paused gate is a consistent cut: the count is stable.
			a := drop.ElemStats().In
			b := drop.ElemStats().In
			if a != b {
				t.Error("traffic crossed a paused gate")
			}
			g.Resume()
			time.Sleep(50 * time.Microsecond)
		}
	}()
	wg.Wait()
	<-cycles
	if got := drop.ElemStats().In; got != pushers*perPusher {
		t.Fatalf("delivered %d, want %d", got, pushers*perPusher)
	}
}
