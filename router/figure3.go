package router

import (
	"fmt"

	"netkit/cf"
	"netkit/core"
)

// Figure3Config parameterises the canonical composite of Figure 3: a
// protocol recogniser feeding IPv4/IPv6 header processors, per-version
// queues, and a link scheduler, all managed by an internal controller.
type Figure3Config struct {
	QueueCapacity    int         // per-version queue depth (default 128)
	SchedulerPolicy  SchedPolicy // default DRR
	ValidateChecksum bool        // IPv4 checksum validation on ingress
	QuantumV4        int         // DRR quantum for the IPv4 queue (bytes)
	QuantumV6        int         // DRR quantum for the IPv6 queue (bytes)
}

// Figure3TypeName is the composite's component type.
const Figure3TypeName = "netkit.router.GatewayComposite"

// gatewayController is the composite's controller (the "Gateway CF Manager
// (or Representative)" of Figure 3): it builds and owns the internal
// topology and constrains it via bind-time interceptors.
type gatewayController struct {
	cfg Figure3Config
}

// Principal implements cf.Controller.
func (g *gatewayController) Principal() string { return "gateway-controller" }

// Configure implements cf.Controller: instantiate and wire the Figure 3
// pipeline inside the composite's capsule.
func (g *gatewayController) Configure(inner *core.Capsule) error {
	recogn := NewProtoRecogn()
	v4 := NewIPv4Proc(g.cfg.ValidateChecksum)
	v6 := NewIPv6Proc()
	q4, err := NewFIFOQueue(g.cfg.QueueCapacity)
	if err != nil {
		return err
	}
	q6, err := NewFIFOQueue(g.cfg.QueueCapacity)
	if err != nil {
		return err
	}
	drop := NewDropper()
	sched, err := NewLinkScheduler(g.cfg.SchedulerPolicy)
	if err != nil {
		return err
	}
	if err := sched.AddInput("in-v4", g.cfg.QuantumV4, 1); err != nil {
		return err
	}
	if err := sched.AddInput("in-v6", g.cfg.QuantumV6, 0); err != nil {
		return err
	}
	egress := NewCounter() // boundary element; its "out" is the composite's out

	for name, comp := range map[string]core.Component{
		"recogn": recogn, "ipv4": v4, "ipv6": v6,
		"queue-v4": q4, "queue-v6": q6, "drop": drop,
		"sched": sched, "egress": egress,
	} {
		if err := inner.Insert(name, comp); err != nil {
			return err
		}
	}

	binds := []struct {
		from, recp, to string
		iface          core.InterfaceID
	}{
		{"recogn", "ipv4", "ipv4", IPacketPushID},
		{"recogn", "ipv6", "ipv6", IPacketPushID},
		{"recogn", "other", "drop", IPacketPushID},
		{"ipv4", "out", "queue-v4", IPacketPushID},
		{"ipv6", "out", "queue-v6", IPacketPushID},
		{"sched", "in-v4", "queue-v4", IPacketPullID},
		{"sched", "in-v6", "queue-v6", IPacketPullID},
		{"sched", "out", "egress", IPacketPushID},
	}
	for _, b := range binds {
		if _, err := inner.Bind(b.from, b.recp, b.to, b.iface); err != nil {
			return fmt.Errorf("router: figure3 wiring %s.%s->%s: %w", b.from, b.recp, b.to, err)
		}
	}
	return nil
}

// NewFigure3Composite builds the Figure 3 composite inside outer's
// registries. The composite provides IPacketPush (delegating to the
// protocol recogniser) and exposes an "out" receptacle (the egress
// counter's output) for the embedder to bind to a NIC sink or further
// elements.
func NewFigure3Composite(outer *core.Capsule, cfg Figure3Config) (*cf.Composite, error) {
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 128
	}
	if cfg.SchedulerPolicy == "" {
		cfg.SchedulerPolicy = PolicyDRR
	}
	if cfg.QuantumV4 <= 0 {
		cfg.QuantumV4 = 1500
	}
	if cfg.QuantumV6 <= 0 {
		cfg.QuantumV6 = 1500
	}
	ctrl := &gatewayController{cfg: cfg}
	comp, err := cf.NewComposite(Figure3TypeName, outer, Rules(false), ctrl)
	if err != nil {
		return nil, err
	}
	if err := comp.Configure(); err != nil {
		return nil, err
	}
	// Boundary: ingress delegates to the recogniser; egress re-exports the
	// inner counter's out receptacle on the composite surface.
	if err := comp.Export(IPacketPushID, "recogn"); err != nil {
		return nil, err
	}
	egress, ok := comp.Inner().Component("egress")
	if !ok {
		return nil, fmt.Errorf("router: figure3: egress missing: %w", core.ErrNotFound)
	}
	outRecp, ok := egress.Receptacle("out")
	if !ok {
		return nil, fmt.Errorf("router: figure3: egress out receptacle missing: %w", core.ErrNotFound)
	}
	comp.AddReceptacle("out", outRecp)

	// Example of a dynamically added topology constraint (§5): inside this
	// composite, nothing may bind directly to the scheduler's output — the
	// egress boundary owns it.
	err = comp.Framework().AddConstraint(ctrl.Principal(), core.BindConstraint{
		Name: "egress-owns-sched-out",
		Check: func(_ *core.Capsule, req core.BindRequest) error {
			if req.From == "sched" && req.Receptacle == "out" && req.To != "egress" {
				return fmt.Errorf("sched.out must bind to egress")
			}
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return comp, nil
}
