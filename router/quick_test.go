package router

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"netkit/core"
	"netkit/internal/trace"
	"netkit/packet"
)

// TestQuickPipelineConservation: for random linear pipelines assembled
// from the standard elements and random packet batches, every packet is
// either forwarded to the tail or accounted as a drop somewhere — the
// data path never loses a packet silently.
func TestQuickPipelineConservation(t *testing.T) {
	check := func(seed int64, nPkts uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		capsule := core.NewCapsule("quick-pipe")

		// Random chain of 1..5 counting/validating/queue-less elements.
		type namedPush struct {
			name string
			comp core.Component
		}
		var chain []namedPush
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			var comp core.Component
			switch rng.Intn(3) {
			case 0:
				comp = NewCounter()
			case 1:
				comp = NewIPv4Proc(false)
			default:
				comp = NewChecksumValidator()
			}
			chain = append(chain, namedPush{fmt.Sprintf("e%d", i), comp})
		}
		tail := NewCounter()
		sink := NewDropper()
		for _, e := range chain {
			if err := capsule.Insert(e.name, e.comp); err != nil {
				return false
			}
		}
		if err := capsule.Insert("tail", tail); err != nil {
			return false
		}
		if err := capsule.Insert("sink", sink); err != nil {
			return false
		}
		for i := 0; i < len(chain)-1; i++ {
			if _, err := ConnectPush(capsule, chain[i].name, "out", chain[i+1].name); err != nil {
				return false
			}
		}
		if _, err := ConnectPush(capsule, chain[len(chain)-1].name, "out", "tail"); err != nil {
			return false
		}
		if _, err := ConnectPush(capsule, "tail", "out", "sink"); err != nil {
			return false
		}

		gen, err := trace.NewGenerator(trace.Config{
			Seed: uint64(seed) + 1, Flows: 4, UDPShare: 100,
		})
		if err != nil {
			return false
		}
		head, _ := chain[0].comp.Provided(IPacketPushID)
		push := head.(IPacketPush)
		total := int(nPkts)%100 + 1
		for i := 0; i < total; i++ {
			raw, err := gen.NextFixed(64)
			if err != nil {
				return false
			}
			if rng.Intn(8) == 0 {
				raw[8] = 1 // TTL about to expire
			}
			if rng.Intn(8) == 0 {
				raw[14] ^= 0xff // corrupt checksum
			}
			if err := push.Push(NewPacket(raw)); err != nil {
				return false
			}
		}

		// Conservation: tail receipts + per-element drops == total.
		dropped := uint64(0)
		for _, e := range chain {
			if sr, ok := e.comp.(StatsReporter); ok {
				dropped += sr.ElemStats().Dropped
			}
		}
		return tail.ElemStats().In+dropped == uint64(total)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHotSwapAlwaysConserves: random pipelines hot-swap a random
// middle element under a batch of traffic; receipts plus drops equal
// sends, and the architecture always validates afterwards.
func TestQuickHotSwapConserves(t *testing.T) {
	check := func(seed int64) bool {
		capsule := core.NewCapsule("quick-swap")
		head := NewCounter()
		mid := NewCounter()
		tail := NewCounter()
		sink := NewDropper()
		for name, comp := range map[string]core.Component{
			"head": head, "mid": mid, "tail": tail, "sink": sink,
		} {
			if err := capsule.Insert(name, comp); err != nil {
				return false
			}
		}
		for _, b := range [][3]string{
			{"head", "out", "mid"}, {"mid", "out", "tail"}, {"tail", "out", "sink"},
		} {
			if _, err := ConnectPush(capsule, b[0], b[1], b[2]); err != nil {
				return false
			}
		}
		gen, err := trace.NewGenerator(trace.Config{Seed: uint64(seed) + 3, Flows: 2, UDPShare: 100})
		if err != nil {
			return false
		}
		done := make(chan int)
		go func() {
			sent := 0
			for i := 0; i < 2000; i++ {
				raw, err := gen.NextFixed(64)
				if err != nil {
					continue
				}
				if head.Push(NewPacket(raw)) == nil {
					sent++
				}
			}
			done <- sent
		}()
		if err := HotSwap(capsule, "mid", "mid2", NewCounter()); err != nil {
			return false
		}
		sent := <-done
		if tail.ElemStats().In != uint64(sent) {
			return false
		}
		return capsule.Snapshot().Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFigure3TTLInvariant: packets emerging from the Figure-3
// composite always have TTL/hop-limit exactly one less than injected, for
// arbitrary generated traffic.
func TestQuickFigure3TTLInvariant(t *testing.T) {
	outer := core.NewCapsule("quick-f3")
	comp, err := NewFigure3Composite(outer, Figure3Config{QueueCapacity: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if err := outer.Insert("gw", comp); err != nil {
		t.Fatal(err)
	}
	collect := newSink()
	if err := outer.Insert("collect", collect); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(outer, "gw", "out", "collect"); err != nil {
		t.Fatal(err)
	}
	ingress, _ := comp.Provided(IPacketPushID)
	push := ingress.(IPacketPush)
	inner := comp.Inner()
	sched, _ := inner.Component("sched")

	check := func(seed uint64, v6 bool) bool {
		gen, err := trace.NewGenerator(trace.Config{Seed: seed + 1, Flows: 4, V6Share: b2pct(v6)})
		if err != nil {
			return false
		}
		raw, err := gen.NextFixed(80)
		if err != nil {
			return false
		}
		wantTTL := 63
		if err := push.Push(NewPacket(raw)); err != nil {
			return false
		}
		// Drain through the scheduler synchronously.
		sched.(*LinkScheduler).RunOnce(16)
		got := collect.last()
		if got == nil {
			return false
		}
		switch packet.Version(got.Data) {
		case 4:
			h, err := packet.ParseIPv4(got.Data)
			return err == nil && int(h.TTL) == wantTTL &&
				packet.ValidateIPv4Checksum(got.Data) == nil
		case 6:
			h, err := packet.ParseIPv6(got.Data)
			return err == nil && int(h.HopLimit) == wantTTL
		default:
			return false
		}
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func b2pct(b bool) int {
	if b {
		return 100
	}
	return 0
}
