package router

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"netkit/cf"
	"netkit/core"
	"netkit/packet"
)

// Tests for bind-time chain fusion (DESIGN.md §8): the fused fast path
// must be observationally indistinguishable from the hop-by-hop path —
// same deliveries, same per-flow order, same counters, same errors — and
// must de-specialise losslessly the instant the meta-level touches the
// chain.

// statMap projects a component's flat stats into name -> value, the shape
// the equivalence assertions compare hop by hop.
func statMap(c core.Component) map[string]float64 {
	out := map[string]float64{}
	if st, ok := c.(core.IStats); ok {
		for _, s := range st.Stats() {
			if s.Hist == nil {
				out[s.Name] = s.Value
			}
		}
	}
	return out
}

// mkTTLPacket is mkFlowPacket with a chosen TTL and optionally a corrupted
// header checksum — the two levers that make IPv4Proc and
// ChecksumValidator drop deterministically.
func mkTTLPacket(t testing.TB, flow, seq uint32, ttl uint8, corrupt bool) *Packet {
	t.Helper()
	src := netip.AddrFrom4([4]byte{10, 0, byte(flow >> 8), byte(flow)})
	dst := netip.AddrFrom4([4]byte{192, 168, byte(flow >> 8), byte(flow)})
	payload := make([]byte, 8)
	payload[0] = byte(flow >> 24)
	payload[1] = byte(flow >> 16)
	payload[2] = byte(flow >> 8)
	payload[3] = byte(flow)
	payload[4] = byte(seq >> 24)
	payload[5] = byte(seq >> 16)
	payload[6] = byte(seq >> 8)
	payload[7] = byte(seq)
	raw, err := packet.BuildUDP4(src, dst, uint16(1000+flow%100), 53, ttl, payload)
	if err != nil {
		t.Fatal(err)
	}
	if corrupt {
		raw[10] ^= 0xff // break the header checksum
	}
	return NewPacket(raw)
}

// buildFusedChain assembles fp -> comps[0] -> ... -> comps[n-1] -> sink in
// a fresh capsule and returns the FastPath head. A nil sink leaves the
// last component's receptacle unbound (or the chain may end in a terminal
// Dropper).
func buildFusedChain(t testing.TB, comps []core.Component, sink core.Component) (*core.Capsule, *FastPath) {
	t.Helper()
	c := core.NewCapsule("fusetest")
	fp := NewFastPath(c)
	if err := c.Insert("fp", fp); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(comps))
	for i, comp := range comps {
		names[i] = "hop" + string(rune('a'+i))
		if err := c.Insert(names[i], comp); err != nil {
			t.Fatal(err)
		}
	}
	prev := "fp"
	for _, name := range names {
		if _, err := ConnectPush(c, prev, "out", name); err != nil {
			t.Fatal(err)
		}
		prev = name
	}
	if sink != nil {
		if err := c.Insert("sink", sink); err != nil {
			t.Fatal(err)
		}
		if _, err := ConnectPush(c, prev, "out", "sink"); err != nil {
			t.Fatal(err)
		}
	}
	return c, fp
}

// TestFastPathFusesChain pins the basic contract: an interceptor-free
// chain of fusible hops compiles into one plan covering every hop, traffic
// through the fused plan is delivered and counted exactly as hop-by-hop
// semantics dictate, and specialised counters (byte totals, TTL drops)
// keep working.
func TestFastPathFusesChain(t *testing.T) {
	cnt := NewCounter()
	v4 := NewIPv4Proc(true)
	sink := newRecordingSink()
	_, fp := buildFusedChain(t, []core.Component{cnt, v4}, sink)

	// Eager compile at attach + the chain wired afterwards means the first
	// push re-fuses; drive one packet, then assert the plan covers both
	// hops.
	if err := fp.Push(mkTTLPacket(t, 1, 0, 64, false)); err != nil {
		t.Fatal(err)
	}
	if got := fp.Fuser().FusedHops(); got != 2 {
		t.Fatalf("fused hops = %d, want 2", got)
	}

	// A batch with one TTL-expiring packet: the expired one drops at v4,
	// the rest reach the sink.
	batch := []*Packet{
		mkTTLPacket(t, 1, 1, 64, false),
		mkTTLPacket(t, 2, 0, 1, false), // TTL 1 -> expires at v4
		mkTTLPacket(t, 1, 2, 64, false),
	}
	if err := fp.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := sink.total(); got != 3 { // 1 warmup + 2 survivors
		t.Fatalf("sink got %d packets, want 3", got)
	}
	sink.perFlowInOrder(t)

	cs := statMap(cnt)
	vs := statMap(v4)
	if cs["packets_in"] != 4 || cs["packets_out"] != 4 || cs["packets_dropped"] != 0 {
		t.Fatalf("counter stats %v", cs)
	}
	if cs["bytes_in"] == 0 {
		t.Fatalf("fused counter lost its byte meter: %v", cs)
	}
	if vs["packets_in"] != 4 || vs["packets_out"] != 3 || vs["packets_dropped"] != 1 || vs["ttl_drops"] != 1 {
		t.Fatalf("v4 stats %v", vs)
	}
	fs := statMap(fp)
	if fs["packets_in"] != 4 || fs["packets_out"] != 4 || fs["fused"] != 2 {
		t.Fatalf("fastpath stats %v", fs)
	}
	if fs["fusions"] < 1 {
		t.Fatalf("no fusion counted: %v", fs)
	}
}

// TestFusedInterceptLifecycle pins the de-specialise/re-fuse loop: the
// fused gauge drops to zero the instant an interceptor lands on any chain
// binding (synchronous watcher, not an eventually-consistent event), the
// interceptor observes every packet pushed after install, and removal
// re-fuses on the next crossing.
func TestFusedInterceptLifecycle(t *testing.T) {
	cnt := NewCounter()
	cnt2 := NewCounter()
	sink := newRecordingSink()
	capsule, fp := buildFusedChain(t, []core.Component{cnt, cnt2}, sink)
	if err := fp.Push(mkTTLPacket(t, 1, 0, 64, false)); err != nil {
		t.Fatal(err)
	}
	if got := fp.Fuser().FusedHops(); got != 2 {
		t.Fatalf("fused hops = %d, want 2", got)
	}

	// Intercept the mid-chain binding hopa -> hopb.
	var audited int
	var mu sync.Mutex
	around := core.PrePost(func(op string, args []any) {
		mu.Lock()
		audited += PacketCount(op, args)
		mu.Unlock()
	}, nil)
	var mid *core.Binding
	for _, b := range capsule.BindingsOf("hopa") {
		mid = b
	}
	if mid == nil {
		t.Fatal("mid-chain binding not found")
	}
	if err := mid.AddInterceptor(core.Interceptor{Name: "audit", Wrap: around}); err != nil {
		t.Fatal(err)
	}
	if got := fp.Fuser().FusedHops(); got != 0 {
		t.Fatalf("plan survived interceptor install: %d hops", got)
	}

	// Every packet pushed now must cross the chain: batches count once per
	// packet (PacketCount), and nothing is lost while de-specialised.
	if err := fp.PushBatch([]*Packet{
		mkTTLPacket(t, 1, 1, 64, false),
		mkTTLPacket(t, 1, 2, 64, false),
	}); err != nil {
		t.Fatal(err)
	}
	if err := fp.Push(mkTTLPacket(t, 1, 3, 64, false)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := audited
	mu.Unlock()
	if got != 3 {
		t.Fatalf("audit saw %d packets, want 3", got)
	}
	if sink.total() != 4 {
		t.Fatalf("sink got %d, want 4", sink.total())
	}

	// Removal re-fuses on the next crossing; the chain goes quiet.
	if err := mid.RemoveInterceptor("audit"); err != nil {
		t.Fatal(err)
	}
	if err := fp.Push(mkTTLPacket(t, 1, 4, 64, false)); err != nil {
		t.Fatal(err)
	}
	if got := fp.Fuser().FusedHops(); got != 2 {
		t.Fatalf("chain did not re-fuse after removal: %d hops", got)
	}
	mu.Lock()
	after := audited
	mu.Unlock()
	if after != 3 {
		t.Fatalf("audit still counting after removal: %d", after)
	}
	sink.perFlowInOrder(t)
	if fp.Fuser().Invalidations() < 2 {
		t.Fatalf("expected >=2 invalidations, got %d", fp.Fuser().Invalidations())
	}
}

// TestFusedTerminalChain pins terminal plans: a chain ending in a Dropper
// fuses with no tail, consumes everything, and counts drops at the
// terminal hop exactly as the unfused Dropper would.
func TestFusedTerminalChain(t *testing.T) {
	cnt := NewCounter()
	drop := NewDropper()
	_, fp := buildFusedChain(t, []core.Component{cnt, drop}, nil)
	batch := make([]*Packet, 5)
	for i := range batch {
		batch[i] = mkTTLPacket(t, 1, uint32(i), 64, false)
	}
	if err := fp.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	if got := fp.Fuser().FusedHops(); got != 2 {
		t.Fatalf("fused hops = %d, want 2", got)
	}
	ds := statMap(drop)
	cs := statMap(cnt)
	if cs["packets_in"] != 5 || cs["packets_out"] != 5 {
		t.Fatalf("counter stats %v", cs)
	}
	if ds["packets_in"] != 5 || ds["packets_dropped"] != 5 || ds["packets_out"] != 0 {
		t.Fatalf("dropper stats %v", ds)
	}
}

// FuzzFusedEquivalence is the fusion correctness contract as a fuzz
// property: for ANY chain drawn from the fusible palette, ANY packet
// stream (mixed TTLs, corrupted checksums), ANY batch segmentation, and
// both entry paths (Push and PushBatch), the fused chain and an identical
// unfused chain deliver the same packets in the same per-flow order and
// finish with identical counters on every hop — shared and specialised.
func FuzzFusedEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(7), []byte{4, 9, 2}, false)
	f.Add(uint64(99), uint8(0), uint8(0), []byte{1}, true)
	f.Add(uint64(7), uint8(5), uint8(255), []byte{32, 32}, false)
	f.Fuzz(func(t *testing.T, seed uint64, shape, mix uint8, splits []byte, perPacket bool) {
		if seed == 0 {
			seed = 1
		}
		rng := xorshift(seed)
		hops := 2 + int(shape%5)

		// Two identical chains from the fusible palette. The shaper gets a
		// frozen clock so its byte budget — and therefore its drop pattern
		// — is a pure function of the packet sequence.
		frozen := time.Now()
		clock := func() time.Time { return frozen }
		mkChain := func() []core.Component {
			r := xorshift(seed) // same draw sequence for both chains
			comps := make([]core.Component, hops)
			for i := range comps {
				switch r.next() % 4 {
				case 0:
					comps[i] = NewCounter()
				case 1:
					comps[i] = NewIPv4Proc(r.next()%2 == 0)
				case 2:
					comps[i] = NewChecksumValidator()
				default:
					sh, err := NewTokenShaper(1e-6, 256+float64(r.next()%8192), clock)
					if err != nil {
						t.Fatal(err)
					}
					comps[i] = sh
				}
			}
			return comps
		}

		// The stream: per-flow sequenced packets with fuzz-chosen TTLs and
		// occasional checksum corruption, so drops happen at different
		// depths.
		flows := 1 + int(rng.next()%8)
		const total = 160
		type unit struct {
			flow, seq uint32
			ttl       uint8
			corrupt   bool
		}
		stream := make([]unit, total)
		seqs := make([]uint32, flows)
		for i := range stream {
			fl := uint32(rng.next() % uint64(flows))
			ttl := uint8(64)
			switch rng.next() % 8 {
			case 0:
				ttl = 1
			case 1:
				ttl = 2
			}
			corrupt := mix != 0 && rng.next()%uint64(mix)+1 == 1
			stream[i] = unit{fl, seqs[fl], ttl, corrupt}
			seqs[fl]++
		}

		fusedComps := mkChain()
		fusedSink := newRecordingSink()
		_, fp := buildFusedChain(t, fusedComps, fusedSink)

		refComps := mkChain()
		refSink := newRecordingSink()
		refCapsule := core.NewCapsule("ref")
		prev := ""
		for i, comp := range refComps {
			name := "hop" + string(rune('a'+i))
			if err := refCapsule.Insert(name, comp); err != nil {
				t.Fatal(err)
			}
			if prev != "" {
				if _, err := ConnectPush(refCapsule, prev, "out", name); err != nil {
					t.Fatal(err)
				}
			}
			prev = name
		}
		if err := refCapsule.Insert("sink", refSink); err != nil {
			t.Fatal(err)
		}
		if _, err := ConnectPush(refCapsule, prev, "out", "sink"); err != nil {
			t.Fatal(err)
		}
		refHead := refComps[0].(IPacketPush)

		// Drive both with the same segmentation. The reference head is hit
		// directly (no FastPath), so it runs the ordinary hop-by-hop path.
		k := 0
		limit := func() int {
			if len(splits) == 0 {
				return 1
			}
			n := 1 + int(splits[k%len(splits)]%32)
			k++
			return n
		}
		push := func(dst IPacketPush, u unit) {
			if err := dst.Push(mkTTLPacket(t, u.flow, u.seq, u.ttl, u.corrupt)); err != nil {
				t.Fatal(err)
			}
		}
		if perPacket {
			for _, u := range stream {
				push(fp, u)
				push(refHead, u)
			}
		} else {
			drive := func(dst IPacketPush) {
				var batch []*Packet
				lim := limit()
				for _, u := range stream {
					batch = append(batch, mkTTLPacket(t, u.flow, u.seq, u.ttl, u.corrupt))
					if len(batch) >= lim {
						if err := ForwardBatch(dst, batch); err != nil {
							t.Fatal(err)
						}
						batch = batch[:0]
						lim = limit()
					}
				}
				if err := ForwardBatch(dst, batch); err != nil {
					t.Fatal(err)
				}
			}
			drive(fp)
			k = 0 // same segmentation for the reference
			drive(refHead)
		}

		// The fused chain must actually have fused — the property is vacuous
		// otherwise.
		if got := fp.Fuser().FusedHops(); got != hops {
			t.Fatalf("fused %d of %d hops", got, hops)
		}

		// Same deliveries, same per-flow order.
		if fusedSink.total() != refSink.total() {
			t.Fatalf("fused delivered %d, unfused %d", fusedSink.total(), refSink.total())
		}
		fusedSink.mu.Lock()
		refSink.mu.Lock()
		for fl, want := range refSink.flows {
			got := fusedSink.flows[fl]
			if len(got) != len(want) {
				t.Fatalf("flow %d: fused %d packets, unfused %d", fl, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("flow %d diverges at %d: fused seq %d, unfused %d", fl, i, got[i], want[i])
				}
			}
		}
		refSink.mu.Unlock()
		fusedSink.mu.Unlock()

		// Identical counters on every hop: shared in/out/dropped/errs AND
		// the specialised meters (bytes_in, ttl_drops, cs_drops,
		// shaper_allowed/denied).
		for i := range refComps {
			fs, rs := statMap(fusedComps[i]), statMap(refComps[i])
			for name, want := range rs {
				if fs[name] != want {
					t.Fatalf("hop %d %T stat %q: fused %v, unfused %v (fused %v, unfused %v)",
						i, refComps[i], name, fs[name], want, fs, rs)
				}
			}
		}
	})
}

// fusedCounterReplica builds a two-counter replica chain so each shard
// lane has a fusible depth >= 2: ingress -> c0 -> c1 -> egress.
func fusedCounterReplica(shard int, fw *cf.Framework) (string, error) {
	c0, c1 := ShardName(shard, "c0"), ShardName(shard, "c1")
	if err := fw.Admit(c0, NewCounter()); err != nil {
		return "", err
	}
	if err := fw.Admit(c1, NewCounter()); err != nil {
		return "", err
	}
	if _, err := fw.Capsule().Bind(c0, "out", c1, IPacketPushID); err != nil {
		return "", err
	}
	if _, err := fw.Capsule().Bind(c1, "out", ShardName(shard, "egress"), IPacketPushID); err != nil {
		return "", err
	}
	return c0, nil
}

// laneFusedGauge reads the "fused" gauge of every lane in the stats tree.
func laneFusedGauge(t *testing.T, s *ShardedCF) []float64 {
	t.Helper()
	tree := s.StatsTree()
	var out []float64
	for _, ch := range tree.Children {
		if g, ok := ch.Stat("fused"); ok {
			out = append(out, g.Value)
		}
	}
	return out
}

// assertTravelledLanesFused requires every lane that has carried traffic
// to report a fused plan of the given depth (fusion is lazy: a lane that
// never ran a batch has nothing to specialise), and at least one such
// lane to exist.
func assertTravelledLanesFused(t *testing.T, s *ShardedCF, depth float64) {
	t.Helper()
	travelled := 0
	for i, ch := range s.StatsTree().Children {
		in, ok := ch.Stat("packets_in")
		if !ok || in.Value == 0 {
			continue
		}
		travelled++
		if g, ok := ch.Stat("fused"); !ok || g.Value != depth {
			t.Fatalf("travelled lane %d fused gauge = %v, want %v", i, g.Value, depth)
		}
	}
	if travelled == 0 {
		t.Fatal("no lane carried traffic")
	}
}

// TestShardedFusionInterceptStress is the live-interception contract under
// the race detector: continuous traffic through fused lanes while an
// auditing interceptor is installed and removed repeatedly must lose
// nothing and keep per-flow order; then a quiesced fence epilogue proves
// audit counts are EXACT across the install fence — an interceptor
// installed after Intercept returns observes every subsequent packet, and
// none after removal.
func TestShardedFusionInterceptStress(t *testing.T) {
	_, s, sink := buildSharded(t, 4, fusedCounterReplica)

	// Warm every lane (64 flows spread over 4 shards) and confirm the
	// travelled lanes fused to depth 2. Start events de-specialise the
	// eagerly-built plans, so fusion shows up on first traffic.
	const warmFlows = 64
	warm := GetBatch()
	for fl := uint32(0); fl < warmFlows; fl++ {
		warm = append(warm, mkFlowPacket(t, 1000+fl, 0))
	}
	if err := s.PushBatch(warm); err != nil {
		t.Fatal(err)
	}
	PutBatch(warm)
	quiesce(t, s)
	assertTravelledLanesFused(t, s, 2)

	// Chaos phase: 4 producers with disjoint flows vs an install/remove
	// loop on the ingress binding of every lane.
	const (
		producers = 4
		perFlow   = 200
		flowsPer  = 8
	)
	var audited uint64
	var amu sync.Mutex
	around := core.PrePost(func(op string, args []any) {
		amu.Lock()
		audited += uint64(PacketCount(op, args))
		amu.Unlock()
	}, nil)

	stop := make(chan struct{})
	meddlerDone := make(chan struct{})
	go func() { // meddler: install/remove against live fused traffic
		defer close(meddlerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Intercept("ingress", "out", "chaos", around); err != nil {
				t.Errorf("intercept: %v", err)
				return
			}
			if err := s.Unintercept("ingress", "out", "chaos"); err != nil {
				t.Errorf("unintercept: %v", err)
				return
			}
		}
	}()
	var producersWg sync.WaitGroup
	for p := 0; p < producers; p++ {
		producersWg.Add(1)
		go func(p int) {
			defer producersWg.Done()
			for seq := uint32(0); seq < perFlow; seq++ {
				batch := GetBatch()
				for fl := 0; fl < flowsPer; fl++ {
					batch = append(batch, mkFlowPacket(t, uint32(1+p*flowsPer+fl), seq))
				}
				if err := s.PushBatch(batch); err != nil {
					t.Errorf("push: %v", err)
					return
				}
				PutBatch(batch)
			}
		}(p)
	}
	prodDone := make(chan struct{})
	go func() { producersWg.Wait(); close(prodDone) }()
	select {
	case <-prodDone:
	case <-time.After(120 * time.Second):
		t.Fatal("stress phase timed out")
	}
	close(stop)
	<-meddlerDone
	quiesce(t, s)

	const chaosTotal = warmFlows + producers*perFlow*flowsPer
	if got := sink.total(); got != chaosTotal {
		t.Fatalf("lost packets under live interception: sink %d, want %d", got, chaosTotal)
	}
	sink.perFlowInOrder(t)

	// Fence epilogue: with traffic quiesced, an install must be exact.
	var fenced uint64
	var fmu sync.Mutex
	exact := core.PrePost(func(op string, args []any) {
		fmu.Lock()
		fenced += uint64(PacketCount(op, args))
		fmu.Unlock()
	}, nil)
	if err := s.Intercept("ingress", "out", "exact", exact); err != nil {
		t.Fatal(err)
	}
	const fenceN = 300
	for i := 0; i < fenceN; i++ {
		if err := s.Push(mkFlowPacket(t, uint32(100+i%16), uint32(i/16))); err != nil {
			t.Fatal(err)
		}
	}
	quiesce(t, s)
	fmu.Lock()
	got := fenced
	fmu.Unlock()
	if got != fenceN {
		t.Fatalf("fenced audit saw %d of %d packets", got, fenceN)
	}
	// While intercepted, every lane must be de-specialised.
	for i, g := range laneFusedGauge(t, s) {
		if g != 0 {
			t.Fatalf("lane %d still fused under interception: gauge %v", i, g)
		}
	}
	if err := s.Unintercept("ingress", "out", "exact"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fenceN; i++ {
		if err := s.Push(mkFlowPacket(t, uint32(200+i%16), uint32(i/16))); err != nil {
			t.Fatal(err)
		}
	}
	quiesce(t, s)
	fmu.Lock()
	after := fenced
	fmu.Unlock()
	if after != fenceN {
		t.Fatalf("audit counted past removal: %d, want %d", after, fenceN)
	}
	// And the lanes re-fused once the chain was clean again.
	assertTravelledLanesFused(t, s, 2)
}
