package router

import (
	"net/netip"
	"sync"
	"sync/atomic"

	"netkit/internal/filter"
)

// FlowCache is the megaflow verdict cache fronting a Classifier's compiled
// rule table: repeat flows skip classification entirely and go straight to
// the resolved output name. Soundness rests on two fences:
//
//   - Entries are keyed on the EXACT flow identity (flowKey, derived from
//     the parsed View) — FlowHashRaw only selects the set, so 32-bit hash
//     collisions can cause a miss, never a wrong verdict.
//   - Entries are stamped with the rule-table generation they were computed
//     under, and a probe only hits when the stamp equals the caller's
//     current generation. Generations are monotonic (Table.Gen bumps on
//     every Add/Remove), so a racing insert from a concurrently-retired
//     snapshot leaves an entry that can only ever miss — invalidation is
//     the same atomic publication that makes the rule change visible.
//
// The layout is set-associative (flowWays entries per set, pseudo-LRU
// replacement by access stamp) with one mutex per stripe of sets, so
// concurrent shard lanes sharing a cache do not serialise on one lock.
type FlowCache struct {
	sets    []flowSet
	stripes []sync.Mutex
	mask    uint32 // len(sets)-1; sets is a power of two
	smask   uint32 // len(stripes)-1

	tick     atomic.Uint64 // pseudo-LRU clock
	hits     atomic.Uint64
	misses   atomic.Uint64
	evicts   atomic.Uint64
	occupied atomic.Int64
}

const (
	flowWays = 4
	// DefaultFlowCacheCap is the verdict-cache capacity a Classifier starts
	// with; the adapt plane can retune it at run time (ResizeFlowCache).
	DefaultFlowCacheCap = 4096
)

type flowSet struct {
	ways [flowWays]flowEntry
}

type flowEntry struct {
	key     flowKey
	verdict flowVerdict
	gen     uint64
	stamp   uint64
	live    bool
}

// flowVerdict is a cached classification result: the matched rule's output
// name, or matched=false for the default path. Output names are resolved
// against the output-set snapshot at forward time, so output topology
// changes need no cache invalidation.
type flowVerdict struct {
	out     string
	matched bool
}

// flowKey is the exact flow identity a verdict is a pure function of when
// the rule table is flow-safe (Snapshot.FlowSafe): every field the filter
// language can test except the per-packet numeric fields (ttl/len/tos),
// which disable caching altogether. netip.Addr is comparable, so flowKey
// works as a struct key with ==.
type flowKey struct {
	src, dst netip.Addr
	srcPort  uint16
	dstPort  uint16
	proto    uint8
	version  uint8
	hasPorts bool
}

func flowKeyOf(v *filter.View) flowKey {
	return flowKey{
		src:      v.Src,
		dst:      v.Dst,
		srcPort:  v.SrcPort,
		dstPort:  v.DstPort,
		proto:    v.Proto,
		version:  uint8(v.Version),
		hasPorts: v.HasPorts,
	}
}

// NewFlowCache builds a cache with at least capacity entries (rounded up
// to a power-of-two set count times flowWays).
func NewFlowCache(capacity int) *FlowCache {
	if capacity < flowWays {
		capacity = flowWays
	}
	nsets := 1
	for nsets*flowWays < capacity {
		nsets <<= 1
	}
	nstripes := nsets
	if nstripes > 64 {
		nstripes = 64
	}
	return &FlowCache{
		sets:    make([]flowSet, nsets),
		stripes: make([]sync.Mutex, nstripes),
		mask:    uint32(nsets - 1),
		smask:   uint32(nstripes - 1),
	}
}

// Cap returns the entry capacity.
func (fc *FlowCache) Cap() int { return len(fc.sets) * flowWays }

// Len returns the live-entry count (occupancy).
func (fc *FlowCache) Len() int { return int(fc.occupied.Load()) }

// Counters returns the lifetime hit/miss/eviction counts.
func (fc *FlowCache) Counters() (hits, misses, evicts uint64) {
	return fc.hits.Load(), fc.misses.Load(), fc.evicts.Load()
}

// probe looks up the verdict for (key, gen), selecting the set by hash.
// A generation mismatch is a miss: the entry was computed under retired
// rules and must not be served.
func (fc *FlowCache) probe(hash uint32, key flowKey, gen uint64) (flowVerdict, bool) {
	si := hash & fc.mask
	mu := &fc.stripes[si&fc.smask]
	mu.Lock()
	set := &fc.sets[si]
	for w := range set.ways {
		e := &set.ways[w]
		if e.live && e.gen == gen && e.key == key {
			e.stamp = fc.tick.Add(1)
			v := e.verdict
			mu.Unlock()
			fc.hits.Add(1)
			return v, true
		}
	}
	mu.Unlock()
	fc.misses.Add(1)
	return flowVerdict{}, false
}

// insert records a verdict computed under gen. Replacement prefers dead or
// generation-stale ways, then the least-recently-touched one.
func (fc *FlowCache) insert(hash uint32, key flowKey, gen uint64, v flowVerdict) {
	si := hash & fc.mask
	mu := &fc.stripes[si&fc.smask]
	mu.Lock()
	defer mu.Unlock()
	set := &fc.sets[si]
	victim, victimStamp := -1, ^uint64(0)
	for w := range set.ways {
		e := &set.ways[w]
		if e.live && e.key == key {
			// Same flow: refresh in place (the gen may have advanced).
			e.gen, e.verdict = gen, v
			e.stamp = fc.tick.Add(1)
			return
		}
		switch {
		case !e.live:
			victim, victimStamp = w, 0
		case e.gen != gen && victimStamp > 0:
			// Stale generations are free to reclaim, but an empty way
			// (stamp 0) still wins.
			victim, victimStamp = w, 1
		case e.stamp < victimStamp:
			victim, victimStamp = w, e.stamp
		}
	}
	e := &set.ways[victim]
	if !e.live {
		fc.occupied.Add(1)
	} else {
		fc.evicts.Add(1)
	}
	*e = flowEntry{key: key, verdict: v, gen: gen, stamp: fc.tick.Add(1), live: true}
}

// ProbeView is the exported probe, keyed on an extracted View — the form
// benchmarks and external drivers use. Returns (output, matched, hit).
func (fc *FlowCache) ProbeView(hash uint32, v *filter.View, gen uint64) (string, bool, bool) {
	ver, ok := fc.probe(hash, flowKeyOf(v), gen)
	return ver.out, ver.matched, ok
}

// InsertView is the exported insert, keyed on an extracted View.
func (fc *FlowCache) InsertView(hash uint32, v *filter.View, gen uint64, out string, matched bool) {
	fc.insert(hash, flowKeyOf(v), gen, flowVerdict{out: out, matched: matched})
}

// Flush drops every entry (counters are preserved; occupancy resets).
func (fc *FlowCache) Flush() {
	for si := range fc.sets {
		mu := &fc.stripes[uint32(si)&fc.smask]
		mu.Lock()
		set := &fc.sets[si]
		for w := range set.ways {
			if set.ways[w].live {
				set.ways[w] = flowEntry{}
				fc.occupied.Add(-1)
			}
		}
		mu.Unlock()
	}
}
