package router

import (
	"runtime"
	"sync/atomic"
	"time"

	"netkit/core"
	"netkit/packet"
)

// This file is the bind-time chain fusion engine (DESIGN.md §8): when the
// binding chain downstream of a source is interceptor-free and every hop
// is batch-aware, the planner compiles the whole chain into one flattened
// run-to-completion function — no receptacle loads, no interface dispatch,
// no sub-batch hand-offs between hops — while keeping reflection one
// meta-call away. Installing an interceptor (or any structural mutation:
// bind, rebind, unbind, hot-swap, insert/remove) invalidates the plan
// through a generation fence; traffic falls back to the exact hop-by-hop
// path and re-fuses lazily once the chain is clean again. The paper's
// central tension — reflective flexibility vs raw forwarding speed —
// resolved the way the programmable-data-plane literature does it:
// specialise the common case, de-specialise on meta-level activity.

// maxFuseDepth bounds how many hops one fused plan may flatten; it also
// sizes the runner's stack-local accounting arrays, so a fused run
// allocates nothing.
const maxFuseDepth = 32

// stepKind classifies a fused hop for the runner. The generic form is a
// per-packet closure; the two specialised kinds let the runner skip the
// indirect call entirely for the most common hop shapes, which is where
// the fused path's margin over the (already batched) hop-by-hop path
// comes from.
type stepKind uint8

const (
	// stepProc runs the hop's proc closure per packet (may drop).
	stepProc stepKind = iota
	// stepCount is a pass-through byte meter: never drops, accumulates
	// len(p.Data). The runner inlines the traversal — and collapses a RUN
	// of consecutive stepCount hops into a single traversal, since they
	// all see the same packets.
	stepCount
	// stepPass does no per-packet work at all (a nested FastPath).
	stepPass
	// stepDrop unconditionally consumes every packet (a terminal
	// Dropper): the runner releases the live set in a tight loop.
	stepDrop
)

// fuseStep is one component's contribution to a fused chain: the hop's
// per-packet work, decoupled from its forwarding.
type fuseStep struct {
	// kind selects the runner strategy for this hop.
	kind stepKind
	// proc performs a stepProc hop's per-packet work (header mutation,
	// conformance) and reports whether the packet survives. acc is
	// accumulated in a runner-local and handed to flush once per batch.
	// proc must maintain the hop's SPECIALISED counters (ttl_drops,
	// cs_drops) itself; the shared in/out/dropped/errs block is replayed
	// by the runner. nil for the other kinds.
	proc func(p *Packet) (keep bool, acc int64)
	// flush folds the accumulated acc into the hop once per batch (the
	// Counter's byte total). nil when the hop accumulates nothing.
	flush func(acc int64)
	// counters is the hop's element counter block; the runner reproduces
	// exactly the accounting the hop-by-hop path would have written.
	counters *elementCounters
	// out is the hop's egress receptacle. nil marks a terminal hop (the
	// Dropper) that consumes every packet.
	out *core.Receptacle[IPacketPush]
}

// chainFusible is the capability interface of the fusion planner,
// discovered by type assertion like the batch capability. A component
// returns its fuseStep, or ok=false when its current configuration cannot
// be flattened. Components that buffer (queues), split (Tee, recognisers,
// classifiers) or block are simply not fusible: the planner stops at them
// and the fused prefix hands off to the remainder through the ordinary
// receptacle crossing.
type chainFusible interface {
	fuseStep() (fuseStep, bool)
}

// fusedPlan is one immutable compiled chain. gen pins the structural
// generation it was compiled under; a plan whose gen no longer matches the
// fuser's is dead and is never run again.
type fusedPlan struct {
	gen  uint64
	hops []fuseStep
	tail *core.Receptacle[IPacketPush] // last hop's egress; nil if terminal
}

// ChainFuser owns the fused plan for the chain downstream of one source
// receptacle and the fence machinery that keeps it honest:
//
//   - gen counts structural mutations of the owning capsule (bumped by a
//     synchronous core.WatchStructure observer, so an interceptor install
//     can never be missed the way a lossy event stream could miss it).
//   - plan holds the current compiled chain; it is valid only while
//     plan.gen == gen (the filter.Table atomic-snapshot pattern).
//   - builtGen is the negative cache: the last generation a compile was
//     attempted for, so an unfusable chain costs one map walk per
//     mutation, not one per batch.
//   - active counts in-flight fused runs; WaitIdle spins on it. A runner
//     raises active BEFORE re-validating gen (both sequentially
//     consistent), and an invalidator bumps gen BEFORE polling active —
//     so either the runner observes the new generation and backs off, or
//     the invalidator observes the runner and waits. After
//     gen-bump + WaitIdle, no stale-plan batch is running: that is the
//     exactness fence ShardedCF.Intercept uses so an audit observes every
//     packet pushed after the install returns.
//
// Forward/ForwardOne degrade to the ordinary hop-by-hop crossing whenever
// no valid plan exists, so fusion is invisible to semantics: same
// delivery, same order, same counters, same errors.
type ChainFuser struct {
	capsule *core.Capsule
	src     core.GenReceptacle

	gen      atomic.Uint64
	plan     atomic.Pointer[fusedPlan]
	builtGen atomic.Uint64
	building atomic.Bool
	active   atomic.Int64

	fusions       atomic.Uint64 // plans compiled
	invalidations atomic.Uint64 // structural events observed

	cancel func()
}

// NewChainFuser attaches a fuser to the chain rooted at src (a receptacle
// owned by the source component) in capsule c and compiles eagerly. The
// fuser re-specialises lazily on the data path after every structural
// mutation.
func NewChainFuser(c *core.Capsule, src core.GenReceptacle) *ChainFuser {
	f := &ChainFuser{capsule: c, src: src}
	f.cancel = c.WatchStructure(func(core.Event) {
		// Any structural mutation may have changed the chain: count it,
		// advance the generation, drop the plan. Atomics only — this runs
		// synchronously under capsule/binding locks.
		f.invalidations.Add(1)
		f.gen.Add(1)
		f.plan.Store(nil)
	})
	f.rebuild(f.gen.Load())
	return f
}

// Close detaches the fuser's structure watcher. Optional: a fuser left
// attached dies with its capsule.
func (f *ChainFuser) Close() {
	if f.cancel != nil {
		f.cancel()
		f.cancel = nil
	}
}

// Forward delivers batch downstream of the source exactly as
// e.forwardBatch(out, batch) would — via the fused plan when one is valid,
// hop by hop otherwise.
func (f *ChainFuser) Forward(e *elementCounters, out *core.Receptacle[IPacketPush], batch []*Packet) error {
	if len(batch) == 0 {
		return nil
	}
	if pl := f.enter(); pl != nil {
		err := f.runBatch(e, pl, batch)
		f.active.Add(-1)
		return err
	}
	return e.forwardBatch(out, batch)
}

// ForwardOne is Forward for a single packet (the per-packet Push path),
// with no batch bookkeeping and no allocation.
func (f *ChainFuser) ForwardOne(e *elementCounters, out *core.Receptacle[IPacketPush], p *Packet) error {
	if pl := f.enter(); pl != nil {
		err := f.runOne(e, pl, p)
		f.active.Add(-1)
		return err
	}
	return e.forward(out, p)
}

// enter returns a validated plan with the active guard raised, or nil
// (guard not raised). The raise-then-revalidate order is the fence's
// correctness argument; see the ChainFuser doc comment.
func (f *ChainFuser) enter() *fusedPlan {
	g := f.gen.Load()
	pl := f.plan.Load()
	if pl == nil || pl.gen != g {
		if f.builtGen.Load() == g {
			return nil // negative cache: generation g known unfusable
		}
		f.rebuild(g)
		pl = f.plan.Load()
		if pl == nil || pl.gen != g {
			return nil
		}
	}
	f.active.Add(1)
	pl = f.plan.Load()
	if pl == nil || pl.gen != f.gen.Load() {
		f.active.Add(-1)
		return nil
	}
	return pl
}

// WaitIdle blocks until no fused run is in flight (or timeout expires,
// returning false). Called after a generation bump, it guarantees every
// subsequent packet crosses under the new structure — the exact-audit
// fence. Callers must not hold locks a fused run's downstream could need.
func (f *ChainFuser) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for f.active.Load() != 0 {
		if time.Now().After(deadline) {
			return false
		}
		runtime.Gosched()
	}
	return true
}

// rebuild compiles a plan for generation g (at most one compiler at a
// time; losers simply fall back hop-by-hop for one batch). Publishing
// builtGen last makes the negative cache safe: a nil plan with
// builtGen == g means "g is unfusable", never "not yet tried".
func (f *ChainFuser) rebuild(g uint64) {
	if !f.building.CompareAndSwap(false, true) {
		return
	}
	defer f.building.Store(false)
	if pl := f.compile(g); pl != nil {
		f.fusions.Add(1)
		f.plan.Store(pl)
	}
	f.builtGen.Store(g)
}

// compile walks the binding graph from the source receptacle, collecting
// consecutive fusible hops whose inbound bindings carry no interceptor
// chain. The walk stops — leaving the remainder to the ordinary receptacle
// crossing — at the first intercepted binding, unbound receptacle,
// non-fusible component, cycle, or maxFuseDepth. A plan shorter than two
// hops buys nothing over forwardBatch and compiles to nil.
func (f *ChainFuser) compile(g uint64) *fusedPlan {
	byRecp := make(map[core.GenReceptacle]*core.Binding)
	for _, b := range f.capsule.Bindings() {
		byRecp[b.Receptacle()] = b
	}
	hops := make([]fuseStep, 0, 8)
	seen := make(map[core.Component]bool, 8)
	var tail *core.Receptacle[IPacketPush]
	lead := f.src
	terminal := false
	for len(hops) < maxFuseDepth {
		b, ok := byRecp[lead]
		if !ok || len(b.Interceptors()) > 0 {
			break
		}
		toName, _ := b.To()
		comp, ok := f.capsule.Component(toName)
		if !ok || seen[comp] {
			break
		}
		fz, ok := comp.(chainFusible)
		if !ok {
			break
		}
		step, ok := fz.fuseStep()
		if !ok {
			break
		}
		seen[comp] = true
		hops = append(hops, step)
		if step.out == nil {
			terminal = true
			break
		}
		tail = step.out
		lead = step.out
	}
	if len(hops) < 2 {
		return nil
	}
	if terminal {
		tail = nil
	}
	return &fusedPlan{gen: g, hops: hops, tail: tail}
}

// runBatch executes one batch through the fused plan, chunked to the
// pooled-batch capacity so the runner's live set fits a stack array.
func (f *ChainFuser) runBatch(e *elementCounters, pl *fusedPlan, batch []*Packet) error {
	var agg batchErrAgg
	for len(batch) > 0 {
		chunk := batch
		if len(chunk) > batchCap {
			chunk = chunk[:batchCap]
		}
		batch = batch[len(chunk):]
		f.runChunk(e, pl, chunk, &agg)
	}
	return agg.err()
}

// runChunk executes one ≤batchCap chunk hop-major: each processing hop
// compacts the surviving ("live") set, pass-through byte meters
// (stepCount) collapse into a single traversal shared by every consecutive
// meter, and the compacted survivors leave to the tail as ONE batch. The
// caller's slice is never mutated (callers reuse their batches): survivors
// move into a pooled scratch batch lazily, at the first hop that both
// drops and keeps — the no-drop and drop-everything paths never copy. The
// shared counters of every hop — and of the source e — are replayed
// afterwards to precisely the values the hop-by-hop path would have
// produced, including per-packet-exact error accounting via BatchError.
func (f *ChainFuser) runChunk(e *elementCounters, pl *fusedPlan, chunk []*Packet, agg *batchErrAgg) {
	n := len(pl.hops)
	var enters [maxFuseDepth]int32
	var drops [maxFuseDepth]int32
	var accs [maxFuseDepth]int64

	live := chunk
	var scratch []*Packet // pooled; live aliases it once inScratch
	inScratch := false
	prevFailed := agg.failed

	for h := 0; h < n && len(live) > 0; {
		hp := &pl.hops[h]
		switch hp.kind {
		case stepPass:
			enters[h] = int32(len(live))
			h++
		case stepCount:
			// One byte-sum traversal serves every consecutive meter: they
			// never drop, so they all see the same live set.
			var acc int64
			for _, p := range live {
				acc += int64(len(p.Data))
			}
			for h < n && pl.hops[h].kind == stepCount {
				enters[h] = int32(len(live))
				accs[h] = acc
				h++
			}
		case stepDrop:
			enters[h] = int32(len(live))
			drops[h] = int32(len(live))
			for _, p := range live {
				p.Release()
			}
			live = live[:0]
			h++
		default: // stepProc
			enters[h] = int32(len(live))
			// proc and the accumulators stay in registers across the
			// closure calls: the compiler would otherwise reload the hop
			// fields and spill accs[h] every iteration, since a closure
			// call could alias them.
			proc := hp.proc
			var acc int64
			i := 0
			for ; i < len(live); i++ {
				keep, a := proc(live[i])
				acc += a
				if !keep {
					break
				}
			}
			if i == len(live) {
				accs[h] = acc
				h++
				continue
			}
			// First drop at i. Survivors before it stay a read-only view;
			// the first subsequent keeper forces them into scratch (an
			// in-place no-op once live already is scratch, since the write
			// index never passes the read index).
			d := int32(1)
			live[i].Release()
			kept := live[:i]
			for j := i + 1; j < len(live); j++ {
				keep, a := proc(live[j])
				acc += a
				if !keep {
					d++
					live[j].Release()
					continue
				}
				if !inScratch {
					if scratch == nil {
						scratch = GetBatch()
					}
					kept = append(scratch[:0], kept...)
					inScratch = true
				}
				kept = append(kept, live[j])
			}
			accs[h] = acc
			drops[h] = d
			live = kept
			h++
		}
	}

	tailDrops := 0
	if len(live) > 0 {
		delivered := false
		if pl.tail != nil {
			if tail, ok := pl.tail.Get(); ok {
				agg.note(ForwardBatch(tail, live), len(live))
				delivered = true
			}
		}
		if !delivered {
			// Unbound tail (or a terminal hop that unexpectedly kept a
			// packet): the last hop drops, as its forwardBatch would.
			tailDrops = len(live)
			for _, p := range live {
				p.Release()
			}
		}
	}
	if scratch != nil {
		PutBatch(scratch) // packets already delivered or released
	}

	failed := agg.failed - prevFailed
	// Source accounting, as its forwardBatch: out for everything the first
	// hop accepted minus downstream failures, errs per failed packet.
	e.out.Add(uint64(len(chunk) - failed))
	if failed > 0 {
		e.errs.Add(uint64(failed))
	}
	for h := 0; h < n; h++ {
		hp := &pl.hops[h]
		enter := int(enters[h])
		if enter == 0 {
			// Never reached: the hop-by-hop path short-circuits empty
			// batches before any counter touch.
			continue
		}
		hp.counters.in.Add(uint64(enter))
		d := int(drops[h])
		if h == n-1 {
			d += tailDrops
		}
		if d > 0 {
			hp.counters.dropped.Add(uint64(d))
		}
		if out := enter - d - failed; out > 0 {
			hp.counters.out.Add(uint64(out))
		}
		if failed > 0 {
			hp.counters.errs.Add(uint64(failed))
		}
		if hp.flush != nil && accs[h] != 0 {
			hp.flush(accs[h])
		}
	}
}

// runOne executes one packet through the fused plan, replaying the exact
// per-packet accounting: hops upstream of a drop count the packet out
// (their downstream absorbed it and returned nil), a tail error charges
// errs at every hop, and hops past a drop never see it at all.
func (f *ChainFuser) runOne(e *elementCounters, pl *fusedPlan, p *Packet) error {
	n := len(pl.hops)
	dropAt := -1
	for h := 0; h < n; h++ {
		hp := &pl.hops[h]
		switch hp.kind {
		case stepPass:
		case stepCount:
			hp.flush(int64(len(p.Data)))
		case stepDrop:
			dropAt = h
		default: // stepProc
			keep, a := hp.proc(p)
			if a != 0 && hp.flush != nil {
				hp.flush(a)
			}
			if !keep {
				dropAt = h
			}
		}
		if dropAt >= 0 {
			break
		}
	}
	var err error
	if dropAt < 0 {
		if pl.tail != nil {
			if tail, ok := pl.tail.Get(); ok {
				err = tail.Push(p)
			} else {
				dropAt = n - 1 // unbound tail: last hop drops
			}
		} else {
			dropAt = n - 1 // terminal hop kept it: consume defensively
		}
	}
	if dropAt >= 0 {
		p.Release()
	}
	last := n - 1
	if dropAt >= 0 {
		last = dropAt
	}
	for h := 0; h <= last; h++ {
		c := pl.hops[h].counters
		c.in.Add(1)
		switch {
		case h == dropAt:
			c.dropped.Add(1)
		case err != nil:
			c.errs.Add(1)
		default:
			c.out.Add(1)
		}
	}
	if err != nil {
		e.errs.Add(1)
		return err
	}
	e.out.Add(1)
	return nil
}

// FusedHops reports the current plan's depth, 0 while de-specialised.
// This is the `fused` gauge's value: the reflective loop watches it drop
// to 0 on interceptor install and return on re-fusion.
func (f *ChainFuser) FusedHops() int {
	pl := f.plan.Load()
	if pl == nil || pl.gen != f.gen.Load() {
		return 0
	}
	return len(pl.hops)
}

// Fusions reports how many plans have been compiled.
func (f *ChainFuser) Fusions() uint64 { return f.fusions.Load() }

// Invalidations reports how many structural mutations have been observed.
func (f *ChainFuser) Invalidations() uint64 { return f.invalidations.Load() }

// statList is the fuser's contribution to its owner's stats: the fused
// gauge plus the specialisation churn counters.
func (f *ChainFuser) statList() []core.Stat {
	return []core.Stat{
		core.G("fused", "hops", float64(f.FusedHops())),
		core.C("fusions", "plans", f.fusions.Load()),
		core.C("fuse_invalidations", "events", f.invalidations.Load()),
	}
}

// ---------------------------------------------------------------------------
// Fusible steps of the standard components
//
// Each step's proc mirrors its component's PushBatch keep-closure exactly
// (same specialised counters, same mutation order); the shared counter
// block and forwarding are replayed by the runner.

func (c *Counter) fuseStep() (fuseStep, bool) {
	return fuseStep{
		kind:     stepCount,
		flush:    func(acc int64) { c.bytes.Add(uint64(acc)) },
		counters: &c.elementCounters,
		out:      c.out,
	}, true
}

func (h *IPv4Proc) fuseStep() (fuseStep, bool) {
	return fuseStep{
		proc: func(p *Packet) (bool, int64) {
			if h.validate {
				if packet.ValidateIPv4Checksum(p.Data) != nil {
					h.csDrops.Add(1)
					return false, 0
				}
			}
			if packet.DecrementTTL(p.Data) != nil {
				h.ttlDrops.Add(1)
				return false, 0
			}
			return true, 0
		},
		counters: &h.elementCounters,
		out:      h.out,
	}, true
}

func (h *IPv6Proc) fuseStep() (fuseStep, bool) {
	return fuseStep{
		proc: func(p *Packet) (bool, int64) {
			if packet.DecrementHopLimit(p.Data) != nil {
				h.hopDrops.Add(1)
				return false, 0
			}
			return true, 0
		},
		counters: &h.elementCounters,
		out:      h.out,
	}, true
}

func (v *ChecksumValidator) fuseStep() (fuseStep, bool) {
	return fuseStep{
		proc: func(p *Packet) (bool, int64) {
			return packet.Version(p.Data) != 4 || packet.ValidateIPv4Checksum(p.Data) == nil, 0
		},
		counters: &v.elementCounters,
		out:      v.out,
	}, true
}

func (s *TokenShaper) fuseStep() (fuseStep, bool) {
	return fuseStep{
		proc: func(p *Packet) (bool, int64) {
			return s.bucket.Allow(len(p.Data)), 0
		},
		counters: &s.elementCounters,
		out:      s.out,
	}, true
}

func (d *Dropper) fuseStep() (fuseStep, bool) {
	return fuseStep{
		kind:     stepDrop,
		counters: &d.elementCounters,
		out:      nil, // terminal: consumes everything
	}, true
}

// ---------------------------------------------------------------------------
// FastPath: the fused chain as a first-class component

// TypeFastPath is the component type of the fused chain entry point. It is
// not in the loader registry: construction needs the owning capsule
// (NewFastPath), which the map[string]string factory signature cannot
// carry.
const TypeFastPath = "netkit.router.FastPath"

// FastPath is a fused chain entry point: an ordinary component with one
// "out" receptacle whose downstream chain it fuses. Pushing into it runs
// the flattened chain; its stats expose the fused gauge the adaptation
// loop watches. Bind it ahead of a pipeline (Blueprint.FastPath + Pipe)
// and push into it instead of the first processing component. A FastPath
// is itself fusible as a pass-through, so nested fast paths flatten.
type FastPath struct {
	*core.Base
	elementCounters
	out  *core.Receptacle[IPacketPush]
	fuse *ChainFuser
}

// NewFastPath returns a fused entry point attached to capsule c. The
// caller must Insert it into the same capsule.
func NewFastPath(c *core.Capsule) *FastPath {
	f := &FastPath{Base: core.NewBase(TypeFastPath)}
	f.out = core.NewReceptacle[IPacketPush](IPacketPushID)
	f.AddReceptacle("out", f.out)
	f.Provide(IPacketPushID, f)
	f.fuse = NewChainFuser(c, f.out)
	return f
}

// Push implements IPacketPush through the fused plan when one is valid.
func (f *FastPath) Push(p *Packet) error {
	f.in.Add(1)
	return f.fuse.ForwardOne(&f.elementCounters, f.out, p)
}

// PushBatch implements IPacketPushBatch through the fused plan when one is
// valid.
func (f *FastPath) PushBatch(batch []*Packet) error {
	f.in.Add(uint64(len(batch)))
	return f.fuse.Forward(&f.elementCounters, f.out, batch)
}

// Fuser exposes the fuser for fence control and introspection.
func (f *FastPath) Fuser() *ChainFuser { return f.fuse }

// Stats implements core.IStats: the element counters plus the fused gauge
// and specialisation churn.
func (f *FastPath) Stats() []core.Stat {
	return append(f.statList(), f.fuse.statList()...)
}

func (f *FastPath) fuseStep() (fuseStep, bool) {
	return fuseStep{kind: stepPass, counters: &f.elementCounters, out: f.out}, true
}

var (
	_ IPacketPushBatch = (*FastPath)(nil)
	_ core.IStats      = (*FastPath)(nil)
	_ chainFusible     = (*FastPath)(nil)
	_ chainFusible     = (*Counter)(nil)
	_ chainFusible     = (*IPv4Proc)(nil)
	_ chainFusible     = (*IPv6Proc)(nil)
	_ chainFusible     = (*ChecksumValidator)(nil)
	_ chainFusible     = (*TokenShaper)(nil)
	_ chainFusible     = (*Dropper)(nil)
)
