package router

import (
	"context"
	"errors"
	"testing"
	"time"

	"netkit/core"
	"netkit/packet"
)

func fillQueue(t *testing.T, q *FIFOQueue, n, size int) {
	t.Helper()
	for i := 0; i < n; i++ {
		b, err := packet.BuildUDP4(srcA, dstA, 1, 2, 64, make([]byte, size))
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Push(NewPacket(b)); err != nil {
			t.Fatal(err)
		}
	}
}

func schedFixture(t *testing.T, policy SchedPolicy, quanta map[string]int, prios map[string]int) (*core.Capsule, *LinkScheduler, map[string]*FIFOQueue, *sink) {
	t.Helper()
	c := newCap()
	s, err := NewLinkScheduler(policy)
	if err != nil {
		t.Fatal(err)
	}
	out := newSink()
	if err := c.Insert("sched", s); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("out", out); err != nil {
		t.Fatal(err)
	}
	queues := make(map[string]*FIFOQueue)
	for name, q := range quanta {
		queue, err := NewFIFOQueue(4096)
		if err != nil {
			t.Fatal(err)
		}
		queues[name] = queue
		if err := c.Insert(name, queue); err != nil {
			t.Fatal(err)
		}
		if err := s.AddInput(name, q, prios[name]); err != nil {
			t.Fatal(err)
		}
		if _, err := ConnectPull(c, "sched", name, name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ConnectPush(c, "sched", "out", "out"); err != nil {
		t.Fatal(err)
	}
	return c, s, queues, out
}

func TestSchedulerValidation(t *testing.T) {
	if _, err := NewLinkScheduler("bogus"); err == nil {
		t.Fatal("want error for bad policy")
	}
	s, err := NewLinkScheduler(PolicyDRR)
	if err != nil {
		t.Fatal(err)
	}
	if s.Policy() != PolicyDRR {
		t.Fatal("policy")
	}
	if err := s.AddInput("", 1, 1); err == nil {
		t.Fatal("want error for empty input")
	}
	if err := s.AddInput("a", 100, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddInput("a", 100, 1); !errors.Is(err, core.ErrAlreadyExists) {
		t.Fatalf("want ErrAlreadyExists, got %v", err)
	}
	if got := s.Inputs(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("inputs = %v", got)
	}
	if err := s.RemoveInput("ghost"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := s.RemoveInput("a"); err != nil {
		t.Fatal(err)
	}
	if s.RunOnce(0) != 0 {
		t.Fatal("zero budget should serve nothing")
	}
	if s.RunOnce(10) != 0 {
		t.Fatal("no inputs should serve nothing")
	}
}

func TestDRRProportionalBytes(t *testing.T) {
	// Two queues with equal packet sizes; quanta 3000 vs 1000 should yield
	// roughly 3:1 service in packets.
	_, s, queues, out := schedFixture(t, PolicyDRR,
		map[string]int{"qa": 3000, "qb": 1000},
		map[string]int{"qa": 0, "qb": 0})
	fillQueue(t, queues["qa"], 1000, 472) // 500-byte IP packets
	fillQueue(t, queues["qb"], 1000, 472)
	served := s.RunOnce(400)
	if served != 400 {
		t.Fatalf("served = %d", served)
	}
	if out.count() != 400 {
		t.Fatalf("out = %d", out.count())
	}
	// Count which queue the packets were pulled from via remaining depth.
	tookA := 1000 - queues["qa"].Len()
	tookB := 1000 - queues["qb"].Len()
	ratio := float64(tookA) / float64(tookB)
	if ratio < 2.2 || ratio > 3.8 {
		t.Fatalf("DRR ratio = %f (a=%d b=%d), want ~3", ratio, tookA, tookB)
	}
}

func TestDRRLargePacketsDebtCarrying(t *testing.T) {
	// Packets larger than the quantum must still be served (debt carrying),
	// just less often.
	_, s, queues, _ := schedFixture(t, PolicyDRR,
		map[string]int{"qa": 100}, map[string]int{"qa": 0})
	fillQueue(t, queues["qa"], 10, 1452) // 1480-byte packets >> quantum
	served := s.RunOnce(100)
	if served != 10 {
		t.Fatalf("served = %d, want all 10 despite quantum deficit", served)
	}
}

func TestStrictPriorityStarvation(t *testing.T) {
	_, s, queues, _ := schedFixture(t, PolicyStrict,
		map[string]int{"hi": 1500, "lo": 1500},
		map[string]int{"hi": 10, "lo": 1})
	fillQueue(t, queues["hi"], 50, 100)
	fillQueue(t, queues["lo"], 50, 100)
	s.RunOnce(50)
	if took := 50 - queues["hi"].Len(); took != 50 {
		t.Fatalf("high-priority served %d of 50", took)
	}
	if took := 50 - queues["lo"].Len(); took != 0 {
		t.Fatalf("low-priority served %d, want starved 0", took)
	}
}

func TestRRAlternates(t *testing.T) {
	_, s, queues, _ := schedFixture(t, PolicyRR,
		map[string]int{"qa": 1500, "qb": 1500},
		map[string]int{"qa": 0, "qb": 0})
	fillQueue(t, queues["qa"], 10, 100)
	fillQueue(t, queues["qb"], 10, 100)
	s.RunOnce(10)
	tookA, tookB := 10-queues["qa"].Len(), 10-queues["qb"].Len()
	if tookA != 5 || tookB != 5 {
		t.Fatalf("RR split = %d/%d, want 5/5", tookA, tookB)
	}
}

func TestSchedulerEmptyQueuesServeZero(t *testing.T) {
	_, s, _, _ := schedFixture(t, PolicyDRR,
		map[string]int{"qa": 1500}, map[string]int{"qa": 0})
	if served := s.RunOnce(10); served != 0 {
		t.Fatalf("served = %d from empty queue", served)
	}
}

func TestSchedulerPumpLifecycle(t *testing.T) {
	_, s, queues, out := schedFixture(t, PolicyDRR,
		map[string]int{"qa": 1500}, map[string]int{"qa": 0})
	ctx := context.Background()
	if err := s.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(ctx); err != nil { // idempotent
		t.Fatal(err)
	}
	fillQueue(t, queues["qa"], 20, 100)
	deadline := time.After(2 * time.Second)
	for out.count() < 20 {
		select {
		case <-deadline:
			t.Fatalf("pump forwarded %d of 20", out.count())
		case <-time.After(time.Millisecond):
		}
	}
	if err := s.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Stop(ctx); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestSchedulerRemoveBoundInputRefused(t *testing.T) {
	_, s, _, _ := schedFixture(t, PolicyDRR,
		map[string]int{"qa": 1500}, map[string]int{"qa": 0})
	if err := s.RemoveInput("qa"); !errors.Is(err, core.ErrAlreadyBound) {
		t.Fatalf("want ErrAlreadyBound, got %v", err)
	}
}
