package router

import (
	"testing"

	"netkit/core"
)

// TestLatencySamplePredicate pins the shared egress latency predicate:
// zero-duration samples count, unstamped packets and clock regressions
// don't. Both egress paths (Push and PushBatch) must use exactly this
// function — the regression this guards is one path counting d == 0 while
// the other silently dropped it.
func TestLatencySamplePredicate(t *testing.T) {
	cases := []struct {
		now, born int64
		d         uint64
		ok        bool
	}{
		{5, 5, 0, true}, // zero duration IS a sample
		{9, 5, 4, true},
		{5, 9, 0, false},  // clock regression: no sample
		{5, 0, 0, false},  // unstamped packet
		{5, -3, 0, false}, // nonsense stamp
	}
	for _, c := range cases {
		d, ok := latencySample(c.now, c.born)
		if d != c.d || ok != c.ok {
			t.Fatalf("latencySample(%d, %d) = (%d, %v), want (%d, %v)",
				c.now, c.born, d, ok, c.d, c.ok)
		}
	}
}

// TestEgressLatencyPathsAgree drives the same stamped/unstamped packet mix
// through both shardEgress entry points and asserts the histogram
// population is identical: one sample per stamped packet, regardless of
// path. Before the predicate was unified a same-instant packet (Born ==
// now, possible at nanosecond granularity under coarse clocks) was counted
// by Push but not by PushBatch.
func TestEgressLatencyPathsAgree(t *testing.T) {
	mk := func(stamped bool) *Packet {
		p := mkFlowPacket(t, 1, 0)
		if stamped {
			p.Born = Nanotime() - 10 // strictly in the past: valid either path
		} else {
			p.Born = 0
		}
		return p
	}

	run := func(push func(e *shardEgress, ps []*Packet)) float64 {
		parent := &ShardedCF{out: core.NewReceptacle[IPacketPush](IPacketPushID)}
		e := newShardEgress(parent, core.NewHistogram())
		push(e, []*Packet{mk(true), mk(false), mk(true)})
		return float64(e.lat.Snapshot().Count)
	}

	perPacket := run(func(e *shardEgress, ps []*Packet) {
		for _, p := range ps {
			_ = e.Push(p)
		}
	})
	batched := run(func(e *shardEgress, ps []*Packet) {
		_ = e.PushBatch(ps)
	})
	if perPacket != 2 || batched != 2 {
		t.Fatalf("sample counts diverge: Push recorded %v, PushBatch recorded %v, want 2 each",
			perPacket, batched)
	}
}
