package router_test

import (
	"fmt"
	"net/netip"

	"netkit/core"
	"netkit/packet"
	"netkit/router"
)

// ExampleForwardBatch demonstrates the batched fast path: packets are
// staged in a pooled batch and handed to the pipeline with one call.
// ForwardBatch takes the batch path on every hop that implements
// IPacketPushBatch (here, Counter and Dropper) and degrades to per-packet
// Push elsewhere, so adoption is incremental. Ownership: the pipeline takes
// the packets, the caller keeps the slice and recycles it with PutBatch.
func ExampleForwardBatch() {
	capsule := core.NewCapsule("batch-example")
	cnt := router.NewCounter()
	_ = capsule.Insert("cnt", cnt)
	_ = capsule.Insert("drop", router.NewDropper())
	_, _ = router.ConnectPush(capsule, "cnt", "out", "drop")

	src := netip.MustParseAddr("10.0.0.1")
	dst := netip.MustParseAddr("192.168.9.9")
	batch := router.GetBatch()
	for port := uint16(0); port < 4; port++ {
		raw, err := packet.BuildUDP4(src, dst, 4000, 5000+port, 64, nil)
		if err != nil {
			panic(err)
		}
		batch = append(batch, router.NewPacket(raw))
	}

	if err := router.ForwardBatch(cnt, batch); err != nil {
		panic(err)
	}
	router.PutBatch(batch) // packets were handed off; recycle the slice

	st := cnt.ElemStats()
	fmt.Printf("in=%d out=%d\n", st.In, st.Out)
	// Output: in=4 out=4
}
