package router

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"netkit/core"
	"netkit/internal/buffers"
	"netkit/internal/osabs"
)

// PumpConfig tunes a NICSource's receive pump.
type PumpConfig struct {
	// Batch bounds the frames drained per poll/delivery round
	// (default nicSourceBatch).
	Batch int
	// Spin is the busy-poll budget: how many consecutive empty polls the
	// pump burns (yielding the OS thread, not sleeping) before parking.
	// 0 parks immediately on the first empty poll. Setting Spin > 0 also
	// forces the generic polling pump onto channel-backed devices, which
	// would otherwise use a blocking channel receive.
	Spin int
	// Park is how long an exhausted pump sleeps before polling again
	// (default 50µs). Wakeup latency after an idle period is bounded by
	// this plus scheduler noise.
	Park time.Duration
	// StampBorn makes the pump stamp each minted packet's Born timestamp
	// (router.Nanotime), so downstream latency histograms — a sharded
	// plane's per-lane recorders, an nkload sink — measure from device
	// ingress. Off by default: the stamp is a clock read per frame.
	StampBorn bool
}

// NICSource is a standard component wrapping a stratum-1 device's receive
// side (§5: "'standard' components that interface to network cards"). Its
// pump turns frames into packets — optionally copied into pooled buffers —
// and pushes them downstream. Any osabs.Device works: the channel-backed
// simulated NIC takes a blocking channel pump, everything else (UDP
// sockets) takes a polling pump with a spin-then-park idle policy.
type NICSource struct {
	*core.Base
	elementCounters
	dev  osabs.Device
	pool *buffers.Pool // nil = wrap frames without copying
	cfg  PumpConfig
	out  *core.Receptacle[IPacketPush]

	spins atomic.Uint64 // empty polls burned inside the spin budget
	parks atomic.Uint64 // times the pump gave up spinning and slept

	mu   sync.Mutex
	quit chan struct{}
	done chan struct{}
}

// NewNICSource wraps an existing device with default pump tuning. pool may
// be nil; it is ignored for arena-backed receive batches, which already
// carry pooled refcounted storage.
func NewNICSource(dev osabs.Device, pool *buffers.Pool) (*NICSource, error) {
	return NewNICSourcePump(dev, pool, PumpConfig{})
}

// NewNICSourcePump wraps an existing device with explicit pump tuning.
func NewNICSourcePump(dev osabs.Device, pool *buffers.Pool, cfg PumpConfig) (*NICSource, error) {
	if dev == nil {
		return nil, fmt.Errorf("router: nil device")
	}
	if cfg.Batch <= 0 {
		cfg.Batch = nicSourceBatch
	}
	if cfg.Park <= 0 {
		cfg.Park = 50 * time.Microsecond
	}
	if cfg.Spin < 0 {
		cfg.Spin = 0
	}
	s := &NICSource{Base: core.NewBase(TypeNICSource), dev: dev, pool: pool, cfg: cfg}
	s.out = core.NewReceptacle[IPacketPush](IPacketPushID)
	s.AddReceptacle("out", s.out)
	s.SetAnnotation("netkit.device", dev.Name())
	return s, nil
}

// Device returns the wrapped device.
func (s *NICSource) Device() osabs.Device { return s.dev }

// Start implements core.Starter.
func (s *NICSource) Start(context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quit != nil {
		return nil
	}
	s.quit = make(chan struct{})
	s.done = make(chan struct{})
	// The channel-backed NIC gets the blocking channel pump (zero idle
	// cost); anything else — and any device under an explicit busy-poll
	// budget — gets the generic polling pump.
	if rc, ok := s.dev.(interface{ RecvChan() <-chan []byte }); ok && s.cfg.Spin == 0 {
		go s.chanPump(rc.RecvChan(), s.quit, s.done)
	} else {
		go s.pollPump(s.quit, s.done)
	}
	return nil
}

// Stop implements core.Stopper.
func (s *NICSource) Stop(context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quit == nil {
		return nil
	}
	close(s.quit)
	<-s.done
	s.quit, s.done = nil, nil
	return nil
}

// nicSourceBatch bounds the opportunistic RX drain per delivery round.
const nicSourceBatch = 64

func (s *NICSource) chanPump(rx <-chan []byte, quit, done chan struct{}) {
	defer close(done)
	batch := GetBatch()
	// Deferred closure, not a bound argument: batch is reassigned by
	// append, and the grown slice is the one to recycle.
	defer func() { PutBatch(batch) }()
	for {
		select {
		case <-quit:
			return
		case frame, ok := <-rx:
			if !ok {
				return
			}
			// Opportunistic batching: block for the first frame, then
			// drain whatever else the ring already holds (bounded) so a
			// busy device amortises the pipeline crossing while an idle
			// one keeps per-frame latency.
			batch = s.wrap(batch, frame)
			for len(batch) < s.cfg.Batch {
				select {
				case f, ok := <-rx:
					if !ok {
						s.flush(batch)
						return
					}
					batch = s.wrap(batch, f)
				default:
					goto full
				}
			}
		full:
			batch = s.flush(batch)
		}
	}
}

// pollPump is the generic device receive loop: batched non-blocking
// RecvBatchInto polls with a spin-then-park idle policy. A busy device
// moves whole batches per poll (one syscall on the mmsg backend); an idle
// one burns its spin budget keeping the core hot — the DPDK-style
// busy-poll trade — then parks in cfg.Park sleeps.
func (s *NICSource) pollPump(quit, done chan struct{}) {
	defer close(done)
	frames := buffers.Batches.Get()
	pkts := GetBatch()
	// Deferred closures, not bound arguments: both slices are reassigned
	// when a batch outgrows the pooled capacity.
	defer func() {
		buffers.Batches.Put(frames)
		PutBatch(pkts)
	}()
	spun := 0
	for {
		select {
		case <-quit:
			return
		default:
		}
		var slab *buffers.Buffer
		var err error
		frames, slab, err = s.dev.RecvBatchInto(frames[:0], s.cfg.Batch)
		if len(frames) == 0 {
			if err != nil {
				return // closed and drained
			}
			if spun < s.cfg.Spin {
				spun++
				s.spins.Add(1)
				runtime.Gosched()
				continue
			}
			s.parks.Add(1)
			select {
			case <-quit:
				return
			case <-time.After(s.cfg.Park):
			}
			spun = 0
			continue
		}
		spun = 0
		s.in.Add(uint64(len(frames)))
		pkts = pkts[:0]
		for _, f := range frames {
			if p := s.mint(f, slab); p != nil {
				pkts = append(pkts, p)
			}
		}
		_ = s.forwardBatch(s.out, pkts)
		// Clear both scratches so an idle source pins neither the
		// handed-off packets nor their frame bytes between polls.
		for i := range pkts {
			pkts[i] = nil
		}
		for i := range frames {
			frames[i] = nil
		}
		if err != nil && errors.Is(err, osabs.ErrClosed) {
			return // closed mid-drain: the batch above was the tail
		}
	}
}

// mint turns one polled frame into a Packet, or nil for a drop. Arena
// frames (slab != nil) already hold one slab reference each, so the
// packet adopts it zero-copy and its Release decrements the slab;
// otherwise the pool path copies (dropping on pool exhaustion, like
// wrap) and the nil-pool path wraps without copying.
func (s *NICSource) mint(f []byte, slab *buffers.Buffer) *Packet {
	var p *Packet
	switch {
	case slab != nil:
		p = &Packet{Data: f, Buf: slab}
	case s.pool != nil:
		pp, err := NewPooledPacket(s.pool, f)
		if err != nil {
			s.dropped.Add(1)
			return nil
		}
		p = pp
	default:
		p = NewPacket(f)
	}
	p.InPort = s.dev.Name()
	if s.cfg.StampBorn {
		p.Born = Nanotime()
	}
	return p
}

// flush forwards the staged batch and clears it so an idle source pins no
// handed-off packets between bursts.
func (s *NICSource) flush(batch []*Packet) []*Packet {
	_ = s.forwardBatch(s.out, batch)
	for i := range batch {
		batch[i] = nil
	}
	return batch[:0]
}

// wrap turns one frame into a Packet and appends it to batch.
func (s *NICSource) wrap(batch []*Packet, frame []byte) []*Packet {
	s.in.Add(1)
	var p *Packet
	if s.pool != nil {
		pp, err := NewPooledPacket(s.pool, frame)
		if err != nil {
			s.dropped.Add(1)
			return batch
		}
		p = pp
	} else {
		p = NewPacket(frame)
	}
	p.InPort = s.dev.Name()
	if s.cfg.StampBorn {
		p.Born = Nanotime()
	}
	return append(batch, p)
}

// Stats implements core.IStats, folding in the wrapped device's stratum-1
// counters plus the pump's busy-poll telemetry.
func (s *NICSource) Stats() []core.Stat {
	out := append(s.statList(),
		core.C("pump_spins", "polls", s.spins.Load()),
		core.C("pump_parks", "sleeps", s.parks.Load()),
	)
	return append(out, s.dev.StatList()...)
}

// ---------------------------------------------------------------------------
// NICSink

// NICSink wraps a device's transmit side: packets pushed into it leave
// the router. TX refusal (ring overflow, socket buffer pressure) counts
// as a drop.
type NICSink struct {
	*core.Base
	elementCounters
	dev osabs.Device
}

// NewNICSink wraps an existing device.
func NewNICSink(dev osabs.Device) (*NICSink, error) {
	if dev == nil {
		return nil, fmt.Errorf("router: nil device")
	}
	s := &NICSink{Base: core.NewBase(TypeNICSink), dev: dev}
	s.Provide(IPacketPushID, s)
	s.SetAnnotation("netkit.device", dev.Name())
	return s, nil
}

// Device returns the wrapped device.
func (s *NICSink) Device() osabs.Device { return s.dev }

// Push implements IPacketPush.
func (s *NICSink) Push(p *Packet) error {
	s.in.Add(1)
	one := [][]byte{p.Data}
	sent, _ := s.dev.SendBatch(one)
	p.Release()
	if sent == 1 {
		s.out.Add(1)
	} else {
		s.dropped.Add(1)
	}
	return nil
}

// PushBatch implements IPacketPushBatch: the whole batch's frames are
// gathered into one pooled [][]byte and handed to the device in a single
// SendBatch — one syscall on the mmsg backend — with counters settled
// once per batch. A refused tail (full ring, socket buffer pressure)
// counts as drops; packets are released only after the device call
// returns, since a sending syscall reads the frame bytes in place.
func (s *NICSink) PushBatch(batch []*Packet) error {
	s.in.Add(uint64(len(batch)))
	frames := buffers.Batches.Get()[:0]
	for _, p := range batch {
		frames = append(frames, p.Data)
	}
	sent, _ := s.dev.SendBatch(frames)
	for i := range frames {
		frames[i] = nil
	}
	buffers.Batches.Put(frames)
	for _, p := range batch {
		p.Release()
	}
	s.out.Add(uint64(sent))
	if d := len(batch) - sent; d > 0 {
		s.dropped.Add(uint64(d))
	}
	return nil
}

// Stats implements core.IStats, folding in the wrapped device's stratum-1
// counters.
func (s *NICSink) Stats() []core.Stat {
	return append(s.statList(), s.dev.StatList()...)
}

// ---------------------------------------------------------------------------
// KernelSource

// KernelSource wraps a stratum-1 kernel/user packet channel, batch-reading
// frames to amortise the crossing (§5: "wrap efficient kernel-user space
// communication mechanisms").
type KernelSource struct {
	*core.Base
	elementCounters
	ch    *osabs.KernelChannel
	batch int
	out   *core.Receptacle[IPacketPush]

	mu   sync.Mutex
	quit chan struct{}
	done chan struct{}
	idle time.Duration
}

// NewKernelSource wraps a kernel channel with the given batch size.
func NewKernelSource(ch *osabs.KernelChannel, batch int) (*KernelSource, error) {
	if ch == nil {
		return nil, fmt.Errorf("router: nil kernel channel")
	}
	if batch <= 0 {
		batch = 32
	}
	k := &KernelSource{
		Base: core.NewBase(TypeKernelSource), ch: ch, batch: batch,
		idle: 50 * time.Microsecond,
	}
	k.out = core.NewReceptacle[IPacketPush](IPacketPushID)
	k.AddReceptacle("out", k.out)
	return k, nil
}

// Start implements core.Starter.
func (k *KernelSource) Start(context.Context) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.quit != nil {
		return nil
	}
	k.quit = make(chan struct{})
	k.done = make(chan struct{})
	go func(quit, done chan struct{}) {
		defer close(done)
		// Pooled scratch makes the steady-state poll loop allocation-free:
		// frames land in a recycled [][]byte, are wrapped into a recycled
		// []*Packet, and the whole batch crosses the pipeline in one
		// PushBatch (or degrades per packet downstream — see ForwardBatch).
		frames := buffers.Batches.Get()
		pkts := GetBatch()
		// Deferred closures, not bound arguments: both slices are
		// reassigned when a batch outgrows the pooled capacity, and the
		// grown slices are the ones to recycle.
		defer func() {
			buffers.Batches.Put(frames)
			PutBatch(pkts)
		}()
		for {
			select {
			case <-quit:
				return
			default:
			}
			frames = k.ch.GetBatchInto(frames[:0], k.batch)
			if len(frames) == 0 {
				select {
				case <-quit:
					return
				case <-time.After(k.idle):
				}
				continue
			}
			k.in.Add(uint64(len(frames)))
			pkts = pkts[:0]
			for _, f := range frames {
				pkts = append(pkts, NewPacket(f))
			}
			_ = k.forwardBatch(k.out, pkts)
			// Clear both scratches so an idle source pins neither the
			// handed-off packets nor their frame bytes between polls.
			for i := range pkts {
				pkts[i] = nil
			}
			for i := range frames {
				frames[i] = nil
			}
		}
	}(k.quit, k.done)
	return nil
}

// Stop implements core.Stopper.
func (k *KernelSource) Stop(context.Context) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.quit == nil {
		return nil
	}
	close(k.quit)
	<-k.done
	k.quit, k.done = nil, nil
	return nil
}

// Stats implements core.IStats, folding in the kernel channel's counters.
func (k *KernelSource) Stats() []core.Stat {
	return append(k.statList(), k.ch.StatList()...)
}

var (
	_ core.Starter = (*NICSource)(nil)
	_ core.Stopper = (*NICSource)(nil)
	_ core.Starter = (*KernelSource)(nil)
	_ core.Stopper = (*KernelSource)(nil)
)

func init() {
	// The config-driven factories create and own their devices; embedders
	// use the New* constructors with existing devices.
	core.Components.MustRegister(TypeNICSource, func(cfg map[string]string) (core.Component, error) {
		name := cfg["device"]
		if name == "" {
			name = "eth0"
		}
		depth := 512
		if s, ok := cfg["depth"]; ok {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("router: nic depth: %w", err)
			}
			depth = v
		}
		nic, err := osabs.NewNIC(name, depth, depth)
		if err != nil {
			return nil, err
		}
		return NewNICSource(nic, nil)
	})
	core.Components.MustRegister(TypeNICSink, func(cfg map[string]string) (core.Component, error) {
		name := cfg["device"]
		if name == "" {
			name = "eth0"
		}
		depth := 512
		if s, ok := cfg["depth"]; ok {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("router: nic depth: %w", err)
			}
			depth = v
		}
		nic, err := osabs.NewNIC(name, depth, depth)
		if err != nil {
			return nil, err
		}
		return NewNICSink(nic)
	})
}
