package router

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"netkit/core"
	"netkit/internal/buffers"
	"netkit/internal/osabs"
)

// NICSource is a standard component wrapping a stratum-1 NIC's receive
// side (§5: "'standard' components that interface to network cards"). Its
// pump turns frames into packets — optionally copied into pooled buffers —
// and pushes them downstream.
type NICSource struct {
	*core.Base
	elementCounters
	nic  *osabs.NIC
	pool *buffers.Pool // nil = wrap frames without copying
	out  *core.Receptacle[IPacketPush]

	mu   sync.Mutex
	quit chan struct{}
	done chan struct{}
}

// NewNICSource wraps an existing NIC. pool may be nil.
func NewNICSource(nic *osabs.NIC, pool *buffers.Pool) (*NICSource, error) {
	if nic == nil {
		return nil, fmt.Errorf("router: nil NIC")
	}
	s := &NICSource{Base: core.NewBase(TypeNICSource), nic: nic, pool: pool}
	s.out = core.NewReceptacle[IPacketPush](IPacketPushID)
	s.AddReceptacle("out", s.out)
	s.SetAnnotation("netkit.device", nic.Name())
	return s, nil
}

// NIC returns the wrapped device.
func (s *NICSource) NIC() *osabs.NIC { return s.nic }

// Start implements core.Starter.
func (s *NICSource) Start(context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quit != nil {
		return nil
	}
	s.quit = make(chan struct{})
	s.done = make(chan struct{})
	go s.pump(s.quit, s.done)
	return nil
}

// Stop implements core.Stopper.
func (s *NICSource) Stop(context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quit == nil {
		return nil
	}
	close(s.quit)
	<-s.done
	s.quit, s.done = nil, nil
	return nil
}

// nicSourceBatch bounds the opportunistic RX drain per delivery round.
const nicSourceBatch = 64

func (s *NICSource) pump(quit, done chan struct{}) {
	defer close(done)
	rx := s.nic.RecvChan()
	batch := GetBatch()
	// Deferred closure, not a bound argument: batch is reassigned by
	// append, and the grown slice is the one to recycle.
	defer func() { PutBatch(batch) }()
	for {
		select {
		case <-quit:
			return
		case frame, ok := <-rx:
			if !ok {
				return
			}
			// Opportunistic batching: block for the first frame, then
			// drain whatever else the ring already holds (bounded) so a
			// busy device amortises the pipeline crossing while an idle
			// one keeps per-frame latency.
			batch = s.wrap(batch, frame)
			for len(batch) < nicSourceBatch {
				select {
				case f, ok := <-rx:
					if !ok {
						s.flush(batch)
						return
					}
					batch = s.wrap(batch, f)
				default:
					goto full
				}
			}
		full:
			batch = s.flush(batch)
		}
	}
}

// flush forwards the staged batch and clears it so an idle source pins no
// handed-off packets between bursts.
func (s *NICSource) flush(batch []*Packet) []*Packet {
	_ = s.forwardBatch(s.out, batch)
	for i := range batch {
		batch[i] = nil
	}
	return batch[:0]
}

// wrap turns one frame into a Packet and appends it to batch.
func (s *NICSource) wrap(batch []*Packet, frame []byte) []*Packet {
	s.in.Add(1)
	var p *Packet
	if s.pool != nil {
		pp, err := NewPooledPacket(s.pool, frame)
		if err != nil {
			s.dropped.Add(1)
			return batch
		}
		p = pp
	} else {
		p = NewPacket(frame)
	}
	p.InPort = s.nic.Name()
	return append(batch, p)
}

// Stats implements core.IStats, folding in the wrapped device's stratum-1
// counters.
func (s *NICSource) Stats() []core.Stat {
	return append(s.statList(), s.nic.Stats().List()...)
}

// ---------------------------------------------------------------------------
// NICSink

// NICSink wraps a NIC's transmit side: packets pushed into it leave the
// router. TX-ring overflow counts as a drop.
type NICSink struct {
	*core.Base
	elementCounters
	nic *osabs.NIC
}

// NewNICSink wraps an existing NIC.
func NewNICSink(nic *osabs.NIC) (*NICSink, error) {
	if nic == nil {
		return nil, fmt.Errorf("router: nil NIC")
	}
	s := &NICSink{Base: core.NewBase(TypeNICSink), nic: nic}
	s.Provide(IPacketPushID, s)
	s.SetAnnotation("netkit.device", nic.Name())
	return s, nil
}

// NIC returns the wrapped device.
func (s *NICSink) NIC() *osabs.NIC { return s.nic }

// Push implements IPacketPush.
func (s *NICSink) Push(p *Packet) error {
	s.in.Add(1)
	err := s.nic.Send(p.Data)
	p.Release()
	if err != nil {
		s.dropped.Add(1)
		return nil
	}
	s.out.Add(1)
	return nil
}

// PushBatch implements IPacketPushBatch: frames are handed to the TX ring
// in order, with counters settled once per batch. TX-ring overflow drops
// the overflowing packet (not the rest of the batch), matching the
// per-packet path.
func (s *NICSink) PushBatch(batch []*Packet) error {
	s.in.Add(uint64(len(batch)))
	var sent, dropped uint64
	for _, p := range batch {
		if s.nic.Send(p.Data) != nil {
			dropped++
		} else {
			sent++
		}
		p.Release()
	}
	s.out.Add(sent)
	s.dropped.Add(dropped)
	return nil
}

// Stats implements core.IStats, folding in the wrapped device's stratum-1
// counters.
func (s *NICSink) Stats() []core.Stat {
	return append(s.statList(), s.nic.Stats().List()...)
}

// ---------------------------------------------------------------------------
// KernelSource

// KernelSource wraps a stratum-1 kernel/user packet channel, batch-reading
// frames to amortise the crossing (§5: "wrap efficient kernel-user space
// communication mechanisms").
type KernelSource struct {
	*core.Base
	elementCounters
	ch    *osabs.KernelChannel
	batch int
	out   *core.Receptacle[IPacketPush]

	mu   sync.Mutex
	quit chan struct{}
	done chan struct{}
	idle time.Duration
}

// NewKernelSource wraps a kernel channel with the given batch size.
func NewKernelSource(ch *osabs.KernelChannel, batch int) (*KernelSource, error) {
	if ch == nil {
		return nil, fmt.Errorf("router: nil kernel channel")
	}
	if batch <= 0 {
		batch = 32
	}
	k := &KernelSource{
		Base: core.NewBase(TypeKernelSource), ch: ch, batch: batch,
		idle: 50 * time.Microsecond,
	}
	k.out = core.NewReceptacle[IPacketPush](IPacketPushID)
	k.AddReceptacle("out", k.out)
	return k, nil
}

// Start implements core.Starter.
func (k *KernelSource) Start(context.Context) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.quit != nil {
		return nil
	}
	k.quit = make(chan struct{})
	k.done = make(chan struct{})
	go func(quit, done chan struct{}) {
		defer close(done)
		// Pooled scratch makes the steady-state poll loop allocation-free:
		// frames land in a recycled [][]byte, are wrapped into a recycled
		// []*Packet, and the whole batch crosses the pipeline in one
		// PushBatch (or degrades per packet downstream — see ForwardBatch).
		frames := buffers.Batches.Get()
		pkts := GetBatch()
		// Deferred closures, not bound arguments: both slices are
		// reassigned when a batch outgrows the pooled capacity, and the
		// grown slices are the ones to recycle.
		defer func() {
			buffers.Batches.Put(frames)
			PutBatch(pkts)
		}()
		for {
			select {
			case <-quit:
				return
			default:
			}
			frames = k.ch.GetBatchInto(frames[:0], k.batch)
			if len(frames) == 0 {
				select {
				case <-quit:
					return
				case <-time.After(k.idle):
				}
				continue
			}
			k.in.Add(uint64(len(frames)))
			pkts = pkts[:0]
			for _, f := range frames {
				pkts = append(pkts, NewPacket(f))
			}
			_ = k.forwardBatch(k.out, pkts)
			// Clear both scratches so an idle source pins neither the
			// handed-off packets nor their frame bytes between polls.
			for i := range pkts {
				pkts[i] = nil
			}
			for i := range frames {
				frames[i] = nil
			}
		}
	}(k.quit, k.done)
	return nil
}

// Stop implements core.Stopper.
func (k *KernelSource) Stop(context.Context) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.quit == nil {
		return nil
	}
	close(k.quit)
	<-k.done
	k.quit, k.done = nil, nil
	return nil
}

// Stats implements core.IStats, folding in the kernel channel's counters.
func (k *KernelSource) Stats() []core.Stat {
	return append(k.statList(), k.ch.StatList()...)
}

var (
	_ core.Starter = (*NICSource)(nil)
	_ core.Stopper = (*NICSource)(nil)
	_ core.Starter = (*KernelSource)(nil)
	_ core.Stopper = (*KernelSource)(nil)
)

func init() {
	// The config-driven factories create and own their devices; embedders
	// use the New* constructors with existing devices.
	core.Components.MustRegister(TypeNICSource, func(cfg map[string]string) (core.Component, error) {
		name := cfg["device"]
		if name == "" {
			name = "eth0"
		}
		depth := 512
		if s, ok := cfg["depth"]; ok {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("router: nic depth: %w", err)
			}
			depth = v
		}
		nic, err := osabs.NewNIC(name, depth, depth)
		if err != nil {
			return nil, err
		}
		return NewNICSource(nic, nil)
	})
	core.Components.MustRegister(TypeNICSink, func(cfg map[string]string) (core.Component, error) {
		name := cfg["device"]
		if name == "" {
			name = "eth0"
		}
		depth := 512
		if s, ok := cfg["depth"]; ok {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("router: nic depth: %w", err)
			}
			depth = v
		}
		nic, err := osabs.NewNIC(name, depth, depth)
		if err != nil {
			return nil, err
		}
		return NewNICSink(nic)
	})
}
