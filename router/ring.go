package router

import "sync/atomic"

// spscRing is the bounded single-producer/single-consumer ring carrying
// pooled packet batches from the ShardedCF dispatcher to one shard worker.
// The fast path is two atomics per hand-off (no locks, no allocation); the
// slow path parks on capacity-1 notification channels, so a full ring
// exerts back-pressure on the producer instead of dropping, and an empty
// ring costs the consumer no spinning.
//
// The SPSC discipline is what makes the unsynchronised slot accesses
// correct: exactly one goroutine advances tail (the dispatch side — the
// ShardedCF serialises its producers per shard) and exactly one advances
// head (the shard worker). Slot hand-off synchronises through the atomic
// tail/head stores, so the consumer's read of buf[i] happens-after the
// producer's write (and the race detector agrees).
type spscRing struct {
	buf  [][]*Packet
	mask uint64

	// head and tail are padded onto separate cache lines: the consumer
	// writes head while the producer writes tail on another core, and
	// co-resident counters would ping-pong one line between cores on
	// every hand-off — the false sharing a multi-core data plane exists
	// to avoid.
	_    [56]byte
	head atomic.Uint64 // next slot to dequeue; advanced only by the consumer
	_    [56]byte
	tail atomic.Uint64 // next slot to enqueue; advanced only by the producer
	_    [56]byte

	wake  chan struct{} // producer -> consumer: ring became non-empty
	space chan struct{} // consumer -> producer: ring gained capacity

	// stalls counts enqueues that found the ring full and had to park —
	// the back-pressure signal the stats tree exposes per lane, and the
	// load indicator shard-scaling adaptation rules key on.
	stalls atomic.Uint64
}

// newSPSCRing creates a ring with capacity rounded up to a power of two
// (minimum 2) so index wrap is a mask.
func newSPSCRing(depth int) *spscRing {
	capacity := 2
	for capacity < depth {
		capacity <<= 1
	}
	return &spscRing{
		buf:   make([][]*Packet, capacity),
		mask:  uint64(capacity - 1),
		wake:  make(chan struct{}, 1),
		space: make(chan struct{}, 1),
	}
}

// tryEnqueue appends b, reporting false when full. Producer side only.
func (r *spscRing) tryEnqueue(b []*Packet) bool {
	t := r.tail.Load()
	if t-r.head.Load() > r.mask {
		return false
	}
	r.buf[t&r.mask] = b
	r.tail.Store(t + 1)
	return true
}

// enqueue blocks until b is accepted or quit closes (returning false with
// b not enqueued). Producer side only. A full ring counts one stall per
// enqueue call, however many wait rounds it takes.
func (r *spscRing) enqueue(b []*Packet, quit <-chan struct{}) bool {
	stalled := false
	for {
		if r.tryEnqueue(b) {
			select {
			case r.wake <- struct{}{}:
			default:
			}
			return true
		}
		if !stalled {
			stalled = true
			r.stalls.Add(1)
		}
		select {
		case <-r.space:
		case <-quit:
			return false
		}
	}
}

// tryDequeue pops the oldest batch, reporting false when empty. Consumer
// side only.
func (r *spscRing) tryDequeue() ([]*Packet, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil, false
	}
	b := r.buf[h&r.mask]
	r.buf[h&r.mask] = nil
	r.head.Store(h + 1)
	select {
	case r.space <- struct{}{}:
	default:
	}
	return b, true
}

// len reports the number of queued batches (approximate under concurrency).
func (r *spscRing) len() int {
	return int(r.tail.Load() - r.head.Load())
}
