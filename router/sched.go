package router

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"netkit/core"
)

// SchedPolicy selects the link-scheduling discipline.
type SchedPolicy string

// Supported policies.
const (
	PolicyDRR    SchedPolicy = "drr"  // byte-based deficit round robin
	PolicyRR     SchedPolicy = "rr"   // packet round robin
	PolicyStrict SchedPolicy = "prio" // strict priority
)

// schedInput is one upstream queue the scheduler serves.
type schedInput struct {
	name    string
	recp    *core.Receptacle[IPacketPull]
	quantum int // bytes per DRR round
	prio    int // strict-priority rank (higher first)
	deficit int // DRR running deficit (may go negative: debt carrying)
}

// LinkScheduler is the active element at the egress of Figure 3: it pulls
// from its input queues according to the configured discipline and pushes
// to its output (typically a NIC sink). It runs either as a pump (Start/
// Stop) or synchronously via RunOnce for deterministic tests and benches.
type LinkScheduler struct {
	*core.Base
	elementCounters
	out    *core.Receptacle[IPacketPush]
	policy SchedPolicy

	mu      sync.Mutex
	inputs  []*schedInput
	next    int
	collect bool      // emit() appends to scratch instead of pushing
	scratch []*Packet // pending batch, reused across RunOnceBatch calls

	pumpMu sync.Mutex
	quit   chan struct{}
	done   chan struct{}
	idle   time.Duration
}

// NewLinkScheduler creates a scheduler with the given policy.
func NewLinkScheduler(policy SchedPolicy) (*LinkScheduler, error) {
	switch policy {
	case PolicyDRR, PolicyRR, PolicyStrict:
	default:
		return nil, fmt.Errorf("router: unknown scheduling policy %q", policy)
	}
	s := &LinkScheduler{
		Base:   core.NewBase(TypeLinkSched),
		policy: policy,
		idle:   50 * time.Microsecond,
	}
	s.out = core.NewReceptacle[IPacketPush](IPacketPushID)
	s.AddReceptacle("out", s.out)
	return s, nil
}

// Policy returns the active discipline.
func (s *LinkScheduler) Policy() SchedPolicy { return s.policy }

// AddInput creates a named pull input with DRR quantum (bytes) and strict
// priority rank. The returned receptacle name can be bound to any
// IPacketPull provider.
func (s *LinkScheduler) AddInput(name string, quantum, prio int) error {
	if name == "" {
		return fmt.Errorf("router: empty input name")
	}
	if quantum <= 0 {
		quantum = 1500
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, in := range s.inputs {
		if in.name == name {
			return fmt.Errorf("router: input %q: %w", name, core.ErrAlreadyExists)
		}
	}
	in := &schedInput{
		name:    name,
		recp:    core.NewReceptacle[IPacketPull](IPacketPullID),
		quantum: quantum,
		prio:    prio,
	}
	s.inputs = append(s.inputs, in)
	s.AddReceptacle(name, in.recp)
	return nil
}

// RemoveInput removes an unbound input.
func (s *LinkScheduler) RemoveInput(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, in := range s.inputs {
		if in.name != name {
			continue
		}
		if in.recp.Bound() {
			return fmt.Errorf("router: input %q: %w", name, core.ErrAlreadyBound)
		}
		if err := s.RemoveReceptacle(name); err != nil {
			return err
		}
		s.inputs = append(s.inputs[:i], s.inputs[i+1:]...)
		if s.next >= len(s.inputs) {
			s.next = 0
		}
		return nil
	}
	return fmt.Errorf("router: input %q: %w", name, core.ErrNotFound)
}

// Inputs returns the input names in service order.
func (s *LinkScheduler) Inputs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.inputs))
	for i, in := range s.inputs {
		out[i] = in.name
	}
	return out
}

// RunOnce serves up to maxPkts packets per the discipline and returns the
// number actually forwarded.
func (s *LinkScheduler) RunOnce(maxPkts int) int {
	if maxPkts <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.policy {
	case PolicyStrict:
		return s.runStrict(maxPkts)
	case PolicyRR:
		return s.runRR(maxPkts)
	default:
		return s.runDRR(maxPkts)
	}
}

// pullFrom fetches the next packet from an input, nil when empty/unbound.
func pullFrom(in *schedInput) *Packet {
	src, ok := in.recp.Get()
	if !ok {
		return nil
	}
	p, err := src.Pull()
	if err != nil {
		return nil
	}
	return p
}

// emit forwards one packet — or, in collect mode, stages it for the
// RunOnceBatch departure batch; caller holds s.mu.
func (s *LinkScheduler) emit(p *Packet) bool {
	s.in.Add(1)
	if s.collect {
		s.scratch = append(s.scratch, p)
		return true
	}
	return s.forward(s.out, p) == nil
}

// RunOnceBatch serves up to maxPkts packets exactly as RunOnce would —
// same discipline, same emission order — but stages them in a reusable
// scratch batch and pushes them downstream as one PushBatch, so the
// egress binding is crossed once per service round instead of once per
// packet.
func (s *LinkScheduler) RunOnceBatch(maxPkts int) int {
	if maxPkts <= 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.collect = true
	s.scratch = s.scratch[:0]
	var served int
	switch s.policy {
	case PolicyStrict:
		served = s.runStrict(maxPkts)
	case PolicyRR:
		served = s.runRR(maxPkts)
	default:
		served = s.runDRR(maxPkts)
	}
	s.collect = false
	if len(s.scratch) > 0 {
		_ = s.forwardBatch(s.out, s.scratch)
		for i := range s.scratch {
			s.scratch[i] = nil // no stale packet refs pinned by the scratch
		}
	}
	return served
}

func (s *LinkScheduler) runStrict(budget int) int {
	order := make([]*schedInput, len(s.inputs))
	copy(order, s.inputs)
	sort.SliceStable(order, func(i, j int) bool { return order[i].prio > order[j].prio })
	served := 0
	for _, in := range order {
		for served < budget {
			p := pullFrom(in)
			if p == nil {
				break
			}
			s.emit(p)
			served++
		}
	}
	return served
}

func (s *LinkScheduler) runRR(budget int) int {
	if len(s.inputs) == 0 {
		return 0
	}
	served := 0
	idleRounds := 0
	for served < budget && idleRounds < len(s.inputs) {
		in := s.inputs[s.next]
		s.next = (s.next + 1) % len(s.inputs)
		p := pullFrom(in)
		if p == nil {
			idleRounds++
			continue
		}
		idleRounds = 0
		s.emit(p)
		served++
	}
	return served
}

func (s *LinkScheduler) runDRR(budget int) int {
	if len(s.inputs) == 0 {
		return 0
	}
	served := 0
	idleRounds := 0
	for served < budget && idleRounds < len(s.inputs) {
		in := s.inputs[s.next]
		s.next = (s.next + 1) % len(s.inputs)
		in.deficit += in.quantum
		if in.deficit <= 0 {
			// Debt carrying: a queue that overdrew (packet larger than its
			// quantum) accumulates credit across rounds. It is not idle —
			// progress is guaranteed because the deficit grows every visit.
			continue
		}
		any := false
		for served < budget && in.deficit > 0 {
			p := pullFrom(in)
			if p == nil {
				in.deficit = 0 // classic DRR: reset when queue empties
				break
			}
			any = true
			in.deficit -= len(p.Data)
			s.emit(p)
			served++
		}
		if any {
			idleRounds = 0
		} else {
			idleRounds++
		}
	}
	return served
}

// Start implements core.Starter: launches the service pump.
func (s *LinkScheduler) Start(context.Context) error {
	s.pumpMu.Lock()
	defer s.pumpMu.Unlock()
	if s.quit != nil {
		return nil
	}
	s.quit = make(chan struct{})
	s.done = make(chan struct{})
	go func(quit, done chan struct{}) {
		defer close(done)
		for {
			select {
			case <-quit:
				return
			default:
			}
			if s.RunOnceBatch(64) == 0 {
				select {
				case <-quit:
					return
				case <-time.After(s.idle):
				}
			}
		}
	}(s.quit, s.done)
	return nil
}

// Stop implements core.Stopper: terminates and joins the pump.
func (s *LinkScheduler) Stop(context.Context) error {
	s.pumpMu.Lock()
	defer s.pumpMu.Unlock()
	if s.quit == nil {
		return nil
	}
	close(s.quit)
	<-s.done
	s.quit, s.done = nil, nil
	return nil
}

// Stats implements core.IStats, adding the input-set size.
func (s *LinkScheduler) Stats() []core.Stat {
	s.mu.Lock()
	inputs := len(s.inputs)
	s.mu.Unlock()
	return append(s.statList(), core.G("sched_inputs", "inputs", float64(inputs)))
}

var (
	_ core.Starter = (*LinkScheduler)(nil)
	_ core.Stopper = (*LinkScheduler)(nil)
)

func init() {
	core.Components.MustRegister(TypeLinkSched, func(cfg map[string]string) (core.Component, error) {
		policy := PolicyDRR
		if s, ok := cfg["policy"]; ok {
			policy = SchedPolicy(s)
		}
		ls, err := NewLinkScheduler(policy)
		if err != nil {
			return nil, err
		}
		n := 1
		if s, ok := cfg["inputs"]; ok {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("router: scheduler inputs: %w", err)
			}
			n = v
		}
		for i := 0; i < n; i++ {
			if err := ls.AddInput("in"+strconv.Itoa(i), 1500, n-i); err != nil {
				return nil, err
			}
		}
		return ls, nil
	})
}
