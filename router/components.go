package router

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"netkit/core"
	"netkit/packet"
)

// Component type names registered with the loader.
const (
	TypeCounter      = "netkit.router.Counter"
	TypeDropper      = "netkit.router.Dropper"
	TypeTee          = "netkit.router.Tee"
	TypeProtoRecogn  = "netkit.router.ProtoRecogn"
	TypeIPv4Proc     = "netkit.router.IPv4Proc"
	TypeIPv6Proc     = "netkit.router.IPv6Proc"
	TypeChecksumVal  = "netkit.router.ChecksumValidator"
	TypeClassifier   = "netkit.router.Classifier"
	TypeFIFOQueue    = "netkit.router.FIFOQueue"
	TypeREDQueue     = "netkit.router.REDQueue"
	TypeLinkSched    = "netkit.router.LinkScheduler"
	TypeTokenShaper  = "netkit.router.TokenShaper"
	TypeNICSource    = "netkit.router.NICSource"
	TypeNICSink      = "netkit.router.NICSink"
	TypeKernelSource = "netkit.router.KernelSource"
)

// ElementStats is the common per-element counter set.
type ElementStats struct {
	In      uint64 // packets received
	Out     uint64 // packets forwarded
	Dropped uint64 // packets absorbed (policy or error)
	Errors  uint64 // structural errors from downstream
}

// elementCounters is embedded by data-path components.
type elementCounters struct {
	in, out, dropped, errs atomic.Uint64
}

func (e *elementCounters) snapshot() ElementStats {
	return ElementStats{
		In: e.in.Load(), Out: e.out.Load(),
		Dropped: e.dropped.Load(), Errors: e.errs.Load(),
	}
}

// ElemStats returns the typed counter snapshot, promoted to every
// component that embeds elementCounters. It is the struct-shaped
// convenience alongside the uniform core.IStats capability.
func (e *elementCounters) ElemStats() ElementStats { return e.snapshot() }

// statList is the shared-counter part of the uniform core.IStats snapshot.
func (e *elementCounters) statList() []core.Stat {
	return []core.Stat{
		core.C("packets_in", "packets", e.in.Load()),
		core.C("packets_out", "packets", e.out.Load()),
		core.C("packets_dropped", "packets", e.dropped.Load()),
		core.C("errors", "errors", e.errs.Load()),
	}
}

// Stats implements core.IStats with the shared counter set; components
// with additional observables shadow this method and append to statList.
func (e *elementCounters) Stats() []core.Stat { return e.statList() }

// StatsReporter is implemented by all standard components: the typed
// ElementStats accessor, retained alongside the uniform telemetry
// capability core.IStats (Stats() []core.Stat) that every standard
// component also implements.
type StatsReporter interface {
	ElemStats() ElementStats
}

// forward pushes p to the receptacle target, accounting the outcome; a
// missing binding counts as a drop (the CF's rules normally prevent this).
func (e *elementCounters) forward(out *core.Receptacle[IPacketPush], p *Packet) error {
	next, ok := out.Get()
	if !ok {
		e.dropped.Add(1)
		p.Release()
		return nil
	}
	if err := next.Push(p); err != nil {
		e.errs.Add(1)
		return err
	}
	e.out.Add(1)
	return nil
}

// ---------------------------------------------------------------------------
// Counter

// Counter counts packets and bytes and forwards them unchanged.
type Counter struct {
	*core.Base
	elementCounters
	bytes atomic.Uint64
	out   *core.Receptacle[IPacketPush]
}

// NewCounter returns a counting pass-through element.
func NewCounter() *Counter {
	c := &Counter{Base: core.NewBase(TypeCounter)}
	c.out = core.NewReceptacle[IPacketPush](IPacketPushID)
	c.AddReceptacle("out", c.out)
	c.Provide(IPacketPushID, c)
	return c
}

// Push implements IPacketPush.
func (c *Counter) Push(p *Packet) error {
	c.in.Add(1)
	c.bytes.Add(uint64(len(p.Data)))
	return c.forward(c.out, p)
}

// PushBatch implements IPacketPushBatch: counters are updated once per
// batch and the batch is forwarded whole.
func (c *Counter) PushBatch(batch []*Packet) error {
	c.in.Add(uint64(len(batch)))
	var bytes uint64
	for _, p := range batch {
		bytes += uint64(len(p.Data))
	}
	c.bytes.Add(bytes)
	return c.forwardBatch(c.out, batch)
}

// Stats implements core.IStats, adding the byte count.
func (c *Counter) Stats() []core.Stat {
	return append(c.statList(), core.C("bytes_in", "bytes", c.bytes.Load()))
}

// Bytes returns the cumulative byte count.
func (c *Counter) Bytes() uint64 { return c.bytes.Load() }

// ---------------------------------------------------------------------------
// Dropper

// Dropper absorbs every packet: the standard sink for unwanted traffic.
type Dropper struct {
	*core.Base
	elementCounters
}

// NewDropper returns a packet sink.
func NewDropper() *Dropper {
	d := &Dropper{Base: core.NewBase(TypeDropper)}
	d.Provide(IPacketPushID, d)
	return d
}

// Push implements IPacketPush.
func (d *Dropper) Push(p *Packet) error {
	d.in.Add(1)
	d.dropped.Add(1)
	p.Release()
	return nil
}

// PushBatch implements IPacketPushBatch.
func (d *Dropper) PushBatch(batch []*Packet) error {
	d.in.Add(uint64(len(batch)))
	d.dropped.Add(uint64(len(batch)))
	for _, p := range batch {
		p.Release()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Tee

// Tee forwards each packet to every bound output slot. The packet is
// shared (not copied): downstream elements must treat packets as
// read-only, matching the zero-copy discipline of the data path; the last
// consumer's Release is a no-op for caller-owned packets and pooled
// packets are retained per extra output.
type Tee struct {
	*core.Base
	elementCounters
	outs *core.MultiReceptacle[IPacketPush]
}

// NewTee returns a splitter with n output slots named "out0".."out<n-1>".
func NewTee(n int) (*Tee, error) {
	if n < 1 {
		return nil, fmt.Errorf("router: tee needs >=1 output, got %d", n)
	}
	t := &Tee{Base: core.NewBase(TypeTee)}
	t.outs = core.NewMultiReceptacle[IPacketPush](IPacketPushID)
	for i := 0; i < n; i++ {
		name := "out" + strconv.Itoa(i)
		slot, err := t.outs.AddSlot(name)
		if err != nil {
			return nil, err
		}
		t.AddReceptacle(name, slot)
	}
	t.Provide(IPacketPushID, t)
	return t, nil
}

// Push implements IPacketPush.
func (t *Tee) Push(p *Packet) error {
	t.in.Add(1)
	// Retain once per extra delivery so each consumer owns a reference.
	targets := make([]IPacketPush, 0, 4)
	t.outs.Each(func(_ string, tgt IPacketPush) bool {
		targets = append(targets, tgt)
		return true
	})
	if len(targets) == 0 {
		t.dropped.Add(1)
		p.Release()
		return nil
	}
	// Each consumer gets its own Packet wrapper so ownership (Release) is
	// per-consumer. All clones are taken up front: the first consumer may
	// release the shared buffer before later deliveries otherwise.
	deliveries := make([]*Packet, len(targets))
	deliveries[0] = p
	for i := 1; i < len(targets); i++ {
		deliveries[i] = p.Clone()
	}
	var firstErr error
	for i, tgt := range targets {
		if err := tgt.Push(deliveries[i]); err != nil && firstErr == nil {
			firstErr = err
			t.errs.Add(1)
		} else {
			t.out.Add(1)
		}
	}
	return firstErr
}

// ---------------------------------------------------------------------------
// Protocol recogniser

// ProtoRecogn demultiplexes by IP version to the "ipv4", "ipv6" and
// "other" outputs (Figure 3's first stage).
type ProtoRecogn struct {
	*core.Base
	elementCounters
	v4, v6, other *core.Receptacle[IPacketPush]
}

// NewProtoRecogn returns a version demultiplexer.
func NewProtoRecogn() *ProtoRecogn {
	r := &ProtoRecogn{Base: core.NewBase(TypeProtoRecogn)}
	r.v4 = core.NewReceptacle[IPacketPush](IPacketPushID)
	r.v6 = core.NewReceptacle[IPacketPush](IPacketPushID)
	r.other = core.NewReceptacle[IPacketPush](IPacketPushID)
	r.AddReceptacle("ipv4", r.v4)
	r.AddReceptacle("ipv6", r.v6)
	r.AddReceptacle("other", r.other)
	r.Provide(IPacketPushID, r)
	return r
}

// Push implements IPacketPush.
func (r *ProtoRecogn) Push(p *Packet) error {
	r.in.Add(1)
	switch packet.Version(p.Data) {
	case 4:
		return r.forward(r.v4, p)
	case 6:
		return r.forward(r.v6, p)
	default:
		return r.forward(r.other, p)
	}
}

// output returns the receptacle serving p's IP version.
func (r *ProtoRecogn) output(p *Packet) *core.Receptacle[IPacketPush] {
	switch packet.Version(p.Data) {
	case 4:
		return r.v4
	case 6:
		return r.v6
	default:
		return r.other
	}
}

// PushBatch implements IPacketPushBatch: maximal runs of same-version
// packets are forwarded as sub-batches (slices of the incoming batch, so
// splitting allocates nothing), preserving arrival order on every output.
func (r *ProtoRecogn) PushBatch(batch []*Packet) error {
	r.in.Add(uint64(len(batch)))
	return r.splitRuns(batch, r.output)
}

// ---------------------------------------------------------------------------
// IPv4 header processor

// IPv4Proc performs the per-hop IPv4 work: optional checksum validation
// and TTL decrement (with RFC 1141 incremental checksum update). Expired
// or malformed packets are dropped and counted.
type IPv4Proc struct {
	*core.Base
	elementCounters
	validate bool
	out      *core.Receptacle[IPacketPush]
	ttlDrops atomic.Uint64
	csDrops  atomic.Uint64
}

// NewIPv4Proc returns a header processor; validate enables checksum
// verification before processing.
func NewIPv4Proc(validate bool) *IPv4Proc {
	h := &IPv4Proc{Base: core.NewBase(TypeIPv4Proc), validate: validate}
	h.out = core.NewReceptacle[IPacketPush](IPacketPushID)
	h.AddReceptacle("out", h.out)
	h.Provide(IPacketPushID, h)
	return h
}

// Push implements IPacketPush.
func (h *IPv4Proc) Push(p *Packet) error {
	h.in.Add(1)
	if h.validate {
		if err := packet.ValidateIPv4Checksum(p.Data); err != nil {
			h.csDrops.Add(1)
			h.dropped.Add(1)
			p.Release()
			return nil
		}
	}
	if err := packet.DecrementTTL(p.Data); err != nil {
		h.ttlDrops.Add(1)
		h.dropped.Add(1)
		p.Release()
		return nil
	}
	return h.forward(h.out, p)
}

// PushBatch implements IPacketPushBatch: per-packet header work is done in
// place and surviving runs are forwarded as sub-batches, so the downstream
// hand-off cost is paid once per run (once per batch when nothing drops,
// the common case).
func (h *IPv4Proc) PushBatch(batch []*Packet) error {
	h.in.Add(uint64(len(batch)))
	return h.forwardRuns(h.out, batch, func(p *Packet) bool {
		if h.validate {
			if err := packet.ValidateIPv4Checksum(p.Data); err != nil {
				h.csDrops.Add(1)
				return false
			}
		}
		if err := packet.DecrementTTL(p.Data); err != nil {
			h.ttlDrops.Add(1)
			return false
		}
		return true
	})
}

// Stats implements core.IStats, adding the specialised drop causes.
func (h *IPv4Proc) Stats() []core.Stat {
	return append(h.statList(),
		core.C("ttl_drops", "packets", h.ttlDrops.Load()),
		core.C("checksum_drops", "packets", h.csDrops.Load()))
}

// TTLDrops returns packets dropped for TTL expiry.
func (h *IPv4Proc) TTLDrops() uint64 { return h.ttlDrops.Load() }

// ChecksumDrops returns packets dropped for checksum failure.
func (h *IPv4Proc) ChecksumDrops() uint64 { return h.csDrops.Load() }

// ---------------------------------------------------------------------------
// IPv6 header processor

// IPv6Proc decrements the hop limit, dropping expired packets.
type IPv6Proc struct {
	*core.Base
	elementCounters
	out      *core.Receptacle[IPacketPush]
	hopDrops atomic.Uint64
}

// NewIPv6Proc returns an IPv6 per-hop processor.
func NewIPv6Proc() *IPv6Proc {
	h := &IPv6Proc{Base: core.NewBase(TypeIPv6Proc)}
	h.out = core.NewReceptacle[IPacketPush](IPacketPushID)
	h.AddReceptacle("out", h.out)
	h.Provide(IPacketPushID, h)
	return h
}

// Push implements IPacketPush.
func (h *IPv6Proc) Push(p *Packet) error {
	h.in.Add(1)
	if err := packet.DecrementHopLimit(p.Data); err != nil {
		h.hopDrops.Add(1)
		h.dropped.Add(1)
		p.Release()
		return nil
	}
	return h.forward(h.out, p)
}

// PushBatch implements IPacketPushBatch (see IPv4Proc.PushBatch).
func (h *IPv6Proc) PushBatch(batch []*Packet) error {
	h.in.Add(uint64(len(batch)))
	return h.forwardRuns(h.out, batch, func(p *Packet) bool {
		if err := packet.DecrementHopLimit(p.Data); err != nil {
			h.hopDrops.Add(1)
			return false
		}
		return true
	})
}

// Stats implements core.IStats, adding the specialised drop cause.
func (h *IPv6Proc) Stats() []core.Stat {
	return append(h.statList(), core.C("hop_drops", "packets", h.hopDrops.Load()))
}

// HopDrops returns packets dropped for hop-limit expiry.
func (h *IPv6Proc) HopDrops() uint64 { return h.hopDrops.Load() }

// ---------------------------------------------------------------------------
// Checksum validator

// ChecksumValidator drops IPv4 packets with invalid header checksums and
// forwards everything else untouched (IPv6 has no header checksum).
type ChecksumValidator struct {
	*core.Base
	elementCounters
	out *core.Receptacle[IPacketPush]
}

// NewChecksumValidator returns a validator element.
func NewChecksumValidator() *ChecksumValidator {
	v := &ChecksumValidator{Base: core.NewBase(TypeChecksumVal)}
	v.out = core.NewReceptacle[IPacketPush](IPacketPushID)
	v.AddReceptacle("out", v.out)
	v.Provide(IPacketPushID, v)
	return v
}

// Push implements IPacketPush.
func (v *ChecksumValidator) Push(p *Packet) error {
	v.in.Add(1)
	if packet.Version(p.Data) == 4 {
		if err := packet.ValidateIPv4Checksum(p.Data); err != nil {
			v.dropped.Add(1)
			p.Release()
			return nil
		}
	}
	return v.forward(v.out, p)
}

// PushBatch implements IPacketPushBatch.
func (v *ChecksumValidator) PushBatch(batch []*Packet) error {
	v.in.Add(uint64(len(batch)))
	return v.forwardRuns(v.out, batch, func(p *Packet) bool {
		return packet.Version(p.Data) != 4 || packet.ValidateIPv4Checksum(p.Data) == nil
	})
}

// ---------------------------------------------------------------------------
// Factories

func init() {
	core.Components.MustRegister(TypeCounter, func(map[string]string) (core.Component, error) {
		return NewCounter(), nil
	})
	core.Components.MustRegister(TypeDropper, func(map[string]string) (core.Component, error) {
		return NewDropper(), nil
	})
	core.Components.MustRegister(TypeTee, func(cfg map[string]string) (core.Component, error) {
		n := 2
		if s, ok := cfg["outputs"]; ok {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("router: tee outputs: %w", err)
			}
			n = v
		}
		return NewTee(n)
	})
	core.Components.MustRegister(TypeProtoRecogn, func(map[string]string) (core.Component, error) {
		return NewProtoRecogn(), nil
	})
	core.Components.MustRegister(TypeIPv4Proc, func(cfg map[string]string) (core.Component, error) {
		return NewIPv4Proc(cfg["validate"] == "true"), nil
	})
	core.Components.MustRegister(TypeIPv6Proc, func(map[string]string) (core.Component, error) {
		return NewIPv6Proc(), nil
	})
	core.Components.MustRegister(TypeChecksumVal, func(map[string]string) (core.Component, error) {
		return NewChecksumValidator(), nil
	})
}
