package router

import "netkit/packet"

// This file is the RSS half of the sharded data plane (DESIGN.md §4.5):
// a flow hash over the packet's addressing fields, used by ShardedCF to
// give every flow an affinity to one pipeline replica. Two properties are
// load-bearing and fuzz-checked (FuzzFlowHashStability):
//
//   - Stability: the hash depends only on the flow identity (addresses,
//     protocol, ports), never on payload, TTL/hop-limit, or checksums —
//     so a flow's packets keep hashing alike as per-hop processing
//     mutates them.
//   - Totality: any byte string hashes without panicking; unparseable
//     packets all hash to the same value (shard 0), preserving their
//     relative order through a sharded dispatch.

// fnv1aInit/fnv1aPrime are the standard 32-bit FNV-1a parameters.
const (
	fnv1aInit  uint32 = 2166136261
	fnv1aPrime uint32 = 16777619
)

func fnv1a(h uint32, bs ...byte) uint32 {
	for _, b := range bs {
		h = (h ^ uint32(b)) * fnv1aPrime
	}
	return h
}

func fnv1aBytes(h uint32, bs []byte) uint32 {
	for _, b := range bs {
		h = (h ^ uint32(b)) * fnv1aPrime
	}
	return h
}

// FlowHash returns the RSS-style flow hash of p: FNV-1a over the packet's
// source and destination addresses, protocol and — for TCP/UDP — transport
// ports, read directly from the raw bytes so hashing costs no header-view
// extraction. Same 5-tuple ⇒ same hash; unparseable packets return 0.
func FlowHash(p *Packet) uint32 { return FlowHashRaw(p.Data) }

// FlowHashRaw is FlowHash over raw IP packet bytes.
func FlowHashRaw(b []byte) uint32 {
	if len(b) < 1 {
		return 0
	}
	switch b[0] >> 4 {
	case 4:
		if len(b) < 20 {
			return 0
		}
		ihl := int(b[0]&0x0f) * 4
		proto := b[9]
		h := fnv1aBytes(fnv1aInit, b[12:20]) // src+dst
		h = fnv1a(h, proto)
		if (proto == packet.ProtoTCP || proto == packet.ProtoUDP) &&
			ihl >= 20 && len(b) >= ihl+4 {
			h = fnv1aBytes(h, b[ihl:ihl+4]) // src+dst port
		}
		return h
	case 6:
		if len(b) < packet.IPv6HeaderLen {
			return 0
		}
		proto := b[6]
		h := fnv1aBytes(fnv1aInit, b[8:40]) // src+dst
		h = fnv1a(h, proto)
		if (proto == packet.ProtoTCP || proto == packet.ProtoUDP) &&
			len(b) >= packet.IPv6HeaderLen+4 {
			h = fnv1aBytes(h, b[40:44])
		}
		return h
	default:
		return 0
	}
}

// FlowShard maps p onto one of n shards by flow hash. n must be positive.
func FlowShard(p *Packet, n int) int {
	return int(FlowHash(p) % uint32(n))
}
