package router

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"netkit/cf"
	"netkit/core"
)

// This file is the sharded multi-core data plane (DESIGN.md §4.5): an
// RSS-style dispatcher that flow-hashes incoming traffic across N
// independent Router CF pipeline replicas, each serviced by its own
// goroutine behind an SPSC ring of pooled batches, with a batch-aware
// merge at egress. The reflective twist over a plain RSS fan-out is that
// the whole arrangement remains ONE component to the meta-space:
//
//   - architecture: the replicas live in a cf.Composite's inner capsule,
//     enumerable via Replicas() and the ordinary Snapshot/Subscribe paths;
//   - interception: Intercept installs an Around on the same binding of
//     every replica all-or-nothing (core.Capsule.AddInterceptorAll), so
//     audits and gates never observe a subset of shards;
//   - reconfiguration: HotSwap pauses every shard worker at a batch
//     boundary (router.Gate) and swaps the named component in each
//     replica with Exportable state migration, lossless under full load.
//
// Correctness contract, proven by the race/fuzz/stress tests in
// shard_test.go and shard_fuzz_test.go: packets of one flow (same RSS
// hash) are delivered downstream in arrival order, the sharded pipeline
// delivers exactly the per-flow sequences the equivalent single pipeline
// would, and no packet is lost across Stop or HotSwap.

// TypeShardedCF is the registered component type of the sharded data
// plane; TypeShardIngress/TypeShardEgress name its per-replica endpoints.
const (
	TypeShardedCF    = "netkit.router.ShardedCF"
	TypeShardIngress = "netkit.router.ShardIngress"
	TypeShardEgress  = "netkit.router.ShardEgress"
)

// ShardName returns the inner-capsule instance name of a replica-scoped
// component: shard 2's "queue" is "s2/queue".
func ShardName(shard int, name string) string {
	return "s" + strconv.Itoa(shard) + "/" + name
}

// ReplicaFactory builds one pipeline replica inside the sharded CF's inner
// framework. The per-shard ingress and egress are pre-admitted under
// ShardName(shard, "ingress") / ShardName(shard, "egress"); the factory
// admits its own components (names must be scoped with ShardName), wires
// them, binds the tail of the pipeline to the egress, and returns the name
// of the entry component the ingress should push into. Replicas must be
// mutually independent: sharing one stateful component across factories
// reintroduces exactly the cross-core contention sharding removes.
type ReplicaFactory func(shard int, fw *cf.Framework) (entry string, err error)

// ShardConfig parameterises a ShardedCF.
type ShardConfig struct {
	// Shards is the replica count (required, >= 1). Every replica is
	// built up front; ActiveShards selects how many the dispatcher
	// spreads flows over.
	Shards int
	// ActiveShards is the initial number of lanes receiving traffic
	// (default Shards). SetActiveShards rescales it at run time.
	ActiveShards int
	// RingDepth bounds each shard's SPSC ring in batches (default 256).
	RingDepth int
	// Hash overrides the dispatch hash (default FlowHash). It must be a
	// pure function of the packet's flow identity.
	Hash func(*Packet) uint32
	// StrictTrust enables the Router CF's out-of-process isolation rule
	// on the inner framework.
	StrictTrust bool
	// LatencyHistogram enables per-lane tail-latency telemetry: packets
	// are stamped (Packet.Born, unless already stamped upstream) at the
	// dispatcher and their residence — ring wait plus the whole replica
	// traversal — is recorded at shard egress into a per-lane
	// core.Histogram, published as the StatLatency histogram stat on each
	// lane and merged at the CF root. The per-lane recorder has one
	// writer (the shard worker), so recording is an uncontended atomic
	// add plus one clock read per packet.
	LatencyHistogram bool
}

// shard is one replica lane: its ring, worker bookkeeping, quiescence
// gate, and the ingress/egress endpoints.
type shard struct {
	ring    *spscRing
	prodMu  sync.Mutex // serialises dispatchers so the ring stays SPSC
	gate    Gate
	ingress *shardIngress
	egress  *shardEgress
	lat     *core.Histogram // per-lane residence histogram (nil unless enabled)

	inflight atomic.Int64 // packets accepted but not yet through the replica
	done     chan struct{}
}

// ShardedCF is the sharded Router CF. It provides IPacketPush (and the
// batched fast path) on its boundary and exposes one "out" receptacle that
// every replica's egress merges into; the component downstream of "out" is
// pushed concurrently by all shard workers and must be safe for concurrent
// use (all standard components are). Build one with NewShardedCF, insert
// it into a capsule, and Start it like any other component.
type ShardedCF struct {
	*cf.Composite
	elementCounters
	out    *core.Receptacle[IPacketPush]
	shards []*shard
	hash   func(*Packet) uint32
	stamp  bool // LatencyHistogram: stamp unstamped packets at intake

	mu      sync.Mutex  // serialises Start/Stop/HotSwap/SetActiveShards
	started atomic.Bool // read by dispatchers without taking mu
	quit    chan struct{}

	// active is the lane count the dispatcher spreads flows over
	// (1..len(shards)). Rescaling is fenced without any cross-shard
	// shared write on the fast path: a dispatcher snapshots active,
	// splits by it, and re-validates the snapshot under the target
	// shard's prodMu (which SetActiveShards holds for every lane while
	// it drains and switches) — a stale snapshot retries with the new
	// modulus, after the rescale has drained every old-modulus packet.
	active atomic.Int32

	stage sync.Pool // per-dispatch [][]*Packet scratch, one slot per shard
}

// NewShardedCF builds a sharded data plane over cfg.Shards replicas, each
// produced by build. outer supplies the component/interface registries the
// inner capsule inherits.
func NewShardedCF(outer *core.Capsule, cfg ShardConfig, build ReplicaFactory) (*ShardedCF, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("router: sharded CF needs >=1 shard, got %d", cfg.Shards)
	}
	if build == nil {
		return nil, fmt.Errorf("router: sharded CF needs a replica factory")
	}
	if cfg.RingDepth <= 0 {
		cfg.RingDepth = 256
	}
	if cfg.Hash == nil {
		cfg.Hash = FlowHash
	}
	ctrl := &shardController{n: cfg.Shards, build: build}
	comp, err := cf.NewComposite(TypeShardedCF, outer, Rules(cfg.StrictTrust), ctrl)
	if err != nil {
		return nil, err
	}
	s := &ShardedCF{
		Composite: comp,
		out:       core.NewReceptacle[IPacketPush](IPacketPushID),
		shards:    make([]*shard, cfg.Shards),
		hash:      cfg.Hash,
	}
	s.stage.New = func() any { return make([][]*Packet, cfg.Shards) }
	s.stamp = cfg.LatencyHistogram
	for i := range s.shards {
		sh := &shard{
			ring:    newSPSCRing(cfg.RingDepth),
			ingress: newShardIngress(),
		}
		if cfg.LatencyHistogram {
			sh.lat = core.NewHistogram()
		}
		sh.egress = newShardEgress(s, sh.lat)
		s.shards[i] = sh
	}
	if cfg.ActiveShards <= 0 || cfg.ActiveShards > cfg.Shards {
		cfg.ActiveShards = cfg.Shards
	}
	s.active.Store(int32(cfg.ActiveShards))
	s.SetAnnotation(AnnotActiveShards, strconv.Itoa(cfg.ActiveShards))
	s.AddReceptacle("out", s.out)
	s.Provide(IPacketPushID, s)
	ctrl.s = s
	// Configure() drives the controller over the inner capsule (building
	// every replica) and then re-checks the Router CF rules recursively.
	if err := s.Configure(); err != nil {
		return nil, err
	}
	// With the replicas wired, attach a chain fuser to every lane head so
	// each worker runs its replica as one flattened closure when the chain
	// is interceptor-free (no worker has started yet, so plain stores are
	// safe). Structural mutations of the inner capsule de-specialise the
	// lane automatically.
	for _, sh := range s.shards {
		sh.ingress.fuse = NewChainFuser(s.Inner(), sh.ingress.out)
	}
	return s, nil
}

// shardController is the composite's managing controller: it builds the
// replicas and annotates every constituent with its replica index so the
// architecture meta-space can enumerate the shards.
type shardController struct {
	s     *ShardedCF
	n     int
	build ReplicaFactory
}

// Principal implements cf.Controller.
func (c *shardController) Principal() string { return "netkit.router.sharded" }

// Configure implements cf.Controller: admit ingress/egress per shard, run
// the replica factory, wire ingress -> entry, and annotate the replica.
func (c *shardController) Configure(inner *core.Capsule) error {
	fw := c.s.Framework()
	for i := 0; i < c.n; i++ {
		sh := c.s.shards[i]
		before := make(map[string]bool)
		for _, name := range inner.ComponentNames() {
			before[name] = true
		}
		if err := fw.Admit(ShardName(i, "ingress"), sh.ingress); err != nil {
			return err
		}
		if err := fw.Admit(ShardName(i, "egress"), sh.egress); err != nil {
			return err
		}
		entry, err := c.build(i, fw)
		if err != nil {
			return fmt.Errorf("router: sharded CF: replica %d: %w", i, err)
		}
		if _, err := inner.Bind(ShardName(i, "ingress"), "out", entry, IPacketPushID); err != nil {
			return fmt.Errorf("router: sharded CF: replica %d entry: %w", i, err)
		}
		for _, name := range inner.ComponentNames() {
			if before[name] {
				continue
			}
			if comp, ok := inner.Component(name); ok {
				comp.SetAnnotation(cf.AnnotReplica, strconv.Itoa(i))
			}
		}
	}
	return nil
}

// AnnotActiveShards is the annotation through which the architecture
// meta-model sees (and rescaling updates) the active lane count.
const AnnotActiveShards = "netkit.shards.active"

// Shards returns the replica count.
func (s *ShardedCF) Shards() int { return len(s.shards) }

// ActiveShards returns how many lanes the dispatcher currently spreads
// flows over.
func (s *ShardedCF) ActiveShards() int { return int(s.active.Load()) }

// SetActiveShards rescales the dispatcher to n lanes (clamped to
// [1, Shards]) without losing a packet or breaking per-flow ordering:
// intake is fenced off by taking every lane's producer lock (traffic
// back-pressures at the boundary), every already-accepted packet drains
// through its replica, and only then does the modulus change — so no
// flow has packets in two lanes at once. The change is recorded on the
// AnnotActiveShards annotation, keeping the architecture meta-model's
// view causally connected. ctx bounds the drain wait. Rescaling to the
// current lane count is a cheap no-op (adaptation rules may re-fire
// with an unchanged target).
func (s *ShardedCF) SetActiveShards(ctx context.Context, n int) error {
	if n < 1 {
		n = 1
	}
	if n > len(s.shards) {
		n = len(s.shards)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(s.active.Load()) == n {
		return nil
	}
	// Take every producer lock: dispatchers already past their staleness
	// check finish enqueueing first; everyone else blocks (or retries
	// with the new modulus once we release).
	for _, sh := range s.shards {
		sh.prodMu.Lock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.prodMu.Unlock()
		}
	}()
	// With intake fenced the workers drain what was already accepted.
	if s.started.Load() {
		if err := s.Quiesce(ctx); err != nil {
			return fmt.Errorf("router: sharded CF: rescale drain: %w", err)
		}
	}
	s.active.Store(int32(n))
	s.SetAnnotation(AnnotActiveShards, strconv.Itoa(n))
	return nil
}

// ---------------------------------------------------------------------------
// Lifecycle

// Start implements core.Starter: it starts the inner capsule's components
// and then one worker goroutine per shard.
func (s *ShardedCF) Start(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started.Load() {
		return nil
	}
	if err := s.Composite.Start(ctx); err != nil {
		return err
	}
	s.quit = make(chan struct{})
	for _, sh := range s.shards {
		sh.done = make(chan struct{})
		go s.worker(sh, s.quit)
	}
	s.started.Store(true)
	return nil
}

// Stop implements core.Stopper: it stops accepting traffic, waits out
// in-flight dispatchers, lets every worker drain its ring (no accepted
// packet is abandoned), joins the workers, and stops the inner capsule.
func (s *ShardedCF) Stop(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started.Load() {
		return nil
	}
	s.started.Store(false)
	// A dispatcher that observed started==true is inside (or about to
	// enter) a shard's prodMu section and will complete its enqueue while
	// the workers still consume; taking every prodMu here waits those
	// out, so after this loop nothing new enters the rings.
	for _, sh := range s.shards {
		sh.prodMu.Lock()
	}
	close(s.quit)
	for _, sh := range s.shards {
		sh.prodMu.Unlock()
	}
	for _, sh := range s.shards {
		<-sh.done
	}
	return s.Composite.Stop(ctx)
}

// worker services one shard: batches cross the replica inside the shard's
// gate so reconfiguration can quiesce the lane at a batch boundary.
func (s *ShardedCF) worker(sh *shard, quit <-chan struct{}) {
	defer close(sh.done)
	process := func(b []*Packet) {
		sh.gate.Do(func() {
			_ = sh.ingress.pushBatch(b)
		})
		sh.inflight.Add(-int64(len(b)))
		PutBatch(b)
	}
	for {
		b, ok := sh.ring.tryDequeue()
		if !ok {
			select {
			case <-sh.ring.wake:
				continue
			case <-quit:
				// Drain: everything enqueued before quit closed is still
				// delivered, so Stop loses nothing.
				for {
					b, ok := sh.ring.tryDequeue()
					if !ok {
						return
					}
					process(b)
				}
			}
		}
		process(b)
	}
}

// ---------------------------------------------------------------------------
// Dispatch (the RSS fast path)

// Push implements IPacketPush: the packet is flow-hashed onto its shard and
// crosses as a batch of one. Sustained traffic should arrive via PushBatch.
func (s *ShardedCF) Push(p *Packet) error {
	if s.stamp && p.Born == 0 {
		p.Born = Nanotime()
	}
	for {
		a := s.active.Load()
		sh := s.shards[int(s.hash(p)%uint32(a))]
		b := GetBatch()
		b = append(b, p)
		switch s.dispatch(sh, b, a) {
		case dispOK:
			s.in.Add(1)
			return nil
		case dispStale:
			// Rescaled between the snapshot and the lane lock; nothing
			// was enqueued — retry under the new modulus.
			PutBatch(b)
		default:
			s.dropStopped(b)
			return ErrStopped
		}
	}
}

// PushBatch implements IPacketPushBatch: the batch is split by flow hash
// into per-shard sub-batches (drawn from the batch pool) which enter each
// shard's ring as single hand-offs. Per-flow arrival order is preserved:
// one flow hashes to one shard, sub-batches keep slice order, and rings
// are FIFO. The incoming slice is not retained.
//
// A concurrent lane rescale is detected per dispatch (dispStale) and the
// not-yet-dispatched remainder is re-split under the new modulus. That
// re-split is order-safe: every packet enqueued under the old modulus
// was fully drained through its replica before SetActiveShards published
// the new one, and a flow's packets are all in one (re-split) lane.
func (s *ShardedCF) PushBatch(batch []*Packet) error {
	if len(batch) == 0 {
		return nil
	}
	if s.stamp {
		// One clock read covers the whole batch; packets stamped upstream
		// (a driver measuring end-to-end latency) keep their earlier Born.
		now := Nanotime()
		for _, p := range batch {
			if p.Born == 0 {
				p.Born = now
			}
		}
	}
	var firstErr error
	remaining := batch
	pooled := false // remaining came from the batch pool (retry rounds)
	release := func() {
		if pooled {
			PutBatch(remaining)
		}
	}
	for {
		n := uint32(s.active.Load())
		if n == 1 {
			b := GetBatch()
			b = append(b, remaining...)
			switch s.dispatch(s.shards[0], b, 1) {
			case dispOK:
				s.in.Add(uint64(len(b)))
				release()
				return firstErr
			case dispStale:
				PutBatch(b)
				continue
			default:
				s.dropStopped(b)
				release()
				if firstErr == nil {
					firstErr = ErrStopped
				}
				return firstErr
			}
		}
		stage := s.stage.Get().([][]*Packet)
		for _, p := range remaining {
			i := int(s.hash(p) % n)
			if stage[i] == nil {
				stage[i] = GetBatch()
			}
			stage[i] = append(stage[i], p)
		}
		release()
		var retry []*Packet
		for i, b := range stage {
			if b == nil {
				continue
			}
			stage[i] = nil
			if retry != nil {
				// Already saw a stale lane this round: stage the rest
				// for the re-split instead of dispatching on the old
				// modulus.
				retry = append(retry, b...)
				PutBatch(b)
				continue
			}
			switch s.dispatch(s.shards[i], b, int32(n)) {
			case dispOK:
				s.in.Add(uint64(len(b)))
			case dispStale:
				retry = append(GetBatch(), b...)
				PutBatch(b)
			default:
				s.dropStopped(b)
				if firstErr == nil {
					firstErr = ErrStopped
				}
			}
		}
		s.stage.Put(stage)
		if retry == nil {
			return firstErr
		}
		remaining, pooled = retry, true
	}
}

// dispResult is the outcome of one lane dispatch.
type dispResult int

const (
	dispOK      dispResult = iota // enqueued; ownership passed to the worker
	dispStopped                   // CF stopped; batch not enqueued
	dispStale                     // lane count changed since the snapshot; retry
)

// dispatch hands one pooled batch to a shard's ring, blocking for space
// (back-pressure, never loss) unless the CF is stopped. seenActive is the
// lane-count snapshot the caller hashed under; it is re-validated under
// the lane's producer lock so a concurrent rescale (which holds every
// producer lock while it drains) can never interleave with an
// old-modulus enqueue. Ownership of the batch slice passes to the worker
// only on dispOK. The inflight increment happens inside the lock, so a
// producer parked on a rescale's fence is not counted as in flight.
func (s *ShardedCF) dispatch(sh *shard, b []*Packet, seenActive int32) dispResult {
	sh.prodMu.Lock()
	if !s.started.Load() {
		sh.prodMu.Unlock()
		return dispStopped
	}
	if s.active.Load() != seenActive {
		sh.prodMu.Unlock()
		return dispStale
	}
	sh.inflight.Add(int64(len(b)))
	ok := sh.ring.enqueue(b, s.quit)
	sh.prodMu.Unlock()
	if !ok {
		sh.inflight.Add(-int64(len(b)))
		return dispStopped
	}
	return dispOK
}

// dropStopped releases and accounts a batch refused by a stopped CF.
func (s *ShardedCF) dropStopped(b []*Packet) {
	s.dropped.Add(uint64(len(b)))
	for _, p := range b {
		p.Release()
	}
	PutBatch(b)
}

// Quiesce blocks until every packet accepted before the call has been
// handed INTO its replica (rings empty, workers between batches), or ctx
// expires. It does not wait for packets buffered inside replica components
// — a replica containing a queue drained by a scheduler pump may still
// hold packets when Quiesce returns; wait on downstream counters for full
// drainage. Call it after producers stop pushing; with producers still
// active the answer is stale the moment it is computed.
func (s *ShardedCF) Quiesce(ctx context.Context) error {
	for {
		idle := true
		for _, sh := range s.shards {
			if sh.inflight.Load() != 0 {
				idle = false
				break
			}
		}
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Microsecond):
		}
	}
}

// ---------------------------------------------------------------------------
// Meta-space surface

// Replicas enumerates the shard constituents by replica index (see
// cf.Composite.Replicas).

// shardBindings resolves the binding rooted at (component, receptacle) in
// every replica, in shard order. component is the unscoped name.
func (s *ShardedCF) shardBindings(component, receptacle string) ([]core.BindingID, error) {
	inner := s.Inner()
	ids := make([]core.BindingID, 0, len(s.shards))
	for i := range s.shards {
		scoped := ShardName(i, component)
		var found *core.Binding
		for _, b := range inner.BindingsOf(scoped) {
			from, recp := b.From()
			if from == scoped && recp == receptacle {
				found = b
				break
			}
		}
		if found == nil {
			return nil, fmt.Errorf("router: sharded CF: no binding at %s.%s: %w",
				scoped, receptacle, core.ErrNotFound)
		}
		ids = append(ids, found.ID())
	}
	return ids, nil
}

// Intercept installs a named Around on the binding rooted at (component,
// receptacle) — unscoped names, e.g. ("ingress", "out") — of EVERY
// replica, all-or-nothing: if any replica refuses, the interceptor is
// rolled back off the replicas it reached and the CF is unchanged. The
// same Around value observes every shard, so an accumulating interceptor
// (an audit counting via PacketCount) aggregates across shards by
// construction.
func (s *ShardedCF) Intercept(component, receptacle, name string, around core.Around) error {
	ids, err := s.shardBindings(component, receptacle)
	if err != nil {
		return err
	}
	if err := s.Inner().AddInterceptorAll(ids, core.Interceptor{Name: name, Wrap: around}); err != nil {
		return err
	}
	// Exact-audit fence: the installs above already de-specialised every
	// lane (the fusers' structure watchers fired synchronously), but a
	// batch that entered a fused plan just before may still be in flight —
	// and a fused run bypasses the binding, so the new interceptor would
	// not see it. Wait those runs out so that once Intercept returns, the
	// chain observes every subsequent packet. Removal needs no fence: a
	// hop-by-hop batch in flight during Unintercept crosses the chain at
	// the binding, the ordinary batch-boundary semantics.
	for _, sh := range s.shards {
		if f := sh.ingress.fuse; f != nil {
			f.WaitIdle(5 * time.Second)
		}
	}
	return nil
}

// Unintercept removes the named interceptor from every replica's binding
// rooted at (component, receptacle).
func (s *ShardedCF) Unintercept(component, receptacle, name string) error {
	ids, err := s.shardBindings(component, receptacle)
	if err != nil {
		return err
	}
	return s.Inner().RemoveInterceptorAll(ids, name)
}

// ---------------------------------------------------------------------------
// Managed reconfiguration

// HotSwap replaces the component known (unscoped) as oldName in EVERY
// replica with a fresh instance from mk, without losing a packet: every
// shard worker is paused at a batch boundary (router.Gate), so no call is
// in flight anywhere in any replica while the swaps run; each swap then
// rebinds atomically and migrates Exportable state (router.HotSwap); the
// workers resume. Traffic arriving during the swap queues in the shard
// rings (back-pressure, not loss). On error some replicas may have been
// swapped and others not — the error names the failing shard; retrying
// with the same arguments re-attempts only the unswapped replicas' names.
func (s *ShardedCF) HotSwap(oldName, newName string, mk func(shard int) (core.Component, error)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.shards {
		sh.gate.Pause()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.gate.Resume()
		}
	}()
	inner := s.Inner()
	for i := range s.shards {
		// Idempotence across retries: a shard already carrying newName
		// (and no oldName) was swapped by a previous partially-failed
		// call and is skipped, so retrying with the same arguments
		// re-attempts only the unswapped replicas.
		_, hasOld := inner.Component(ShardName(i, oldName))
		_, hasNew := inner.Component(ShardName(i, newName))
		switch {
		case !hasOld && hasNew:
			continue
		case !hasOld:
			return fmt.Errorf("router: sharded CF: shard %d: %q: %w",
				i, ShardName(i, oldName), core.ErrNotFound)
		case hasNew:
			// A previous swap of this shard failed after inserting the
			// replacement but before diverting traffic (router.HotSwap's
			// documented failure mode). Remove the abandoned remnant so
			// the retry can re-insert cleanly.
			if err := removeAbandoned(inner, ShardName(i, newName)); err != nil {
				return fmt.Errorf("router: sharded CF: shard %d: stale %q: %w",
					i, ShardName(i, newName), err)
			}
		}
		repl, err := mk(i)
		if err != nil {
			return fmt.Errorf("router: sharded CF: shard %d replacement: %w", i, err)
		}
		repl.SetAnnotation(cf.AnnotReplica, strconv.Itoa(i))
		if err := HotSwap(inner, ShardName(i, oldName), ShardName(i, newName), repl); err != nil {
			return fmt.Errorf("router: sharded CF: shard %d: %w", i, err)
		}
	}
	return nil
}

// removeAbandoned dismantles a replacement component a failed HotSwap left
// behind with no traffic diverted to it: its outgoing bindings are unbound,
// it is stopped if started, and removed. If any binding still targets the
// component (traffic WAS diverted), it is left alone and an error reports
// that the capsule needs manual repair.
func removeAbandoned(c *core.Capsule, name string) error {
	for _, b := range c.BindingsOf(name) {
		if to, _ := b.To(); to == name {
			return fmt.Errorf("router: %q still receives traffic (binding #%d): %w",
				name, b.ID(), core.ErrAlreadyBound)
		}
	}
	for _, b := range c.BindingsOf(name) {
		if err := c.Unbind(b.ID()); err != nil {
			return err
		}
	}
	if c.Started(name) {
		if err := c.StopComponent(context.Background(), name); err != nil {
			return err
		}
	}
	return c.Remove(name)
}

// ---------------------------------------------------------------------------
// Stats

// ElemStats reports the CF as one element: In counts packets accepted by
// the dispatcher, Out packets merged out of the egresses, Dropped/Errors
// aggregate the dispatcher and the endpoints.
func (s *ShardedCF) ElemStats() ElementStats {
	agg := s.snapshot()
	for _, sh := range s.shards {
		e := sh.egress.snapshot()
		agg.Out += e.Out
		agg.Dropped += e.Dropped
		agg.Errors += e.Errors
		agg.Dropped += sh.ingress.snapshot().Dropped
	}
	return agg
}

// ShardStats reports one replica lane: In/Out/Dropped/Errors across its
// ingress and egress endpoints.
func (s *ShardedCF) ShardStats(i int) ElementStats {
	sh := s.shards[i]
	in := sh.ingress.snapshot()
	eg := sh.egress.snapshot()
	return ElementStats{
		In:      in.In,
		Out:     eg.Out,
		Dropped: in.Dropped + eg.Dropped,
		Errors:  in.Errors + eg.Errors,
	}
}

// Stats implements core.IStats for the CF as one element (merged across
// the dispatcher and every lane endpoint), plus the lane-count gauges.
// Defined explicitly: the embedded cf.Composite and elementCounters both
// carry a Stats method, and the merged element view is the right one.
func (s *ShardedCF) Stats() []core.Stat {
	st := s.ElemStats()
	out := []core.Stat{
		core.C("packets_in", "packets", st.In),
		core.C("packets_out", "packets", st.Out),
		core.C("packets_dropped", "packets", st.Dropped),
		core.C("errors", "errors", st.Errors),
		core.G("shards", "lanes", float64(len(s.shards))),
		core.G("shards_active", "lanes", float64(s.active.Load())),
	}
	if s.stamp {
		// The CF-level latency view is the bucket-wise merge of the lane
		// histograms — exactly the distribution of all packets' residence.
		var merged *core.HistSnapshot
		for _, sh := range s.shards {
			merged = merged.Merge(sh.lat.Snapshot())
		}
		out = append(out, core.H(StatLatency, "ns", merged))
	}
	return out
}

// laneStats is one replica lane's uniform snapshot: its element counters
// plus the SPSC ring's depth and back-pressure stalls.
func (s *ShardedCF) laneStats(i int) []core.Stat {
	sh := s.shards[i]
	st := s.ShardStats(i)
	out := []core.Stat{
		core.C("packets_in", "packets", st.In),
		core.C("packets_out", "packets", st.Out),
		core.C("packets_dropped", "packets", st.Dropped),
		core.C("errors", "errors", st.Errors),
		core.G("ring_batches", "batches", float64(sh.ring.len())),
		core.C("ring_stalls", "stalls", sh.ring.stalls.Load()),
		core.G("inflight", "packets", float64(sh.inflight.Load())),
	}
	if sh.lat != nil {
		out = append(out, core.H(StatLatency, "ns", sh.lat.Snapshot()))
	}
	if f := sh.ingress.fuse; f != nil {
		// The fused gauge (hops in the lane's compiled plan, 0 while
		// de-specialised) plus specialisation churn — the reflective
		// loop's view of whether this lane is running flat-out or hop by
		// hop under meta-level activity.
		out = append(out, f.statList()...)
	}
	return out
}

// StatsTree implements core.IStatsTree: the CF's own merged stats at the
// root, one "shard<i>" child per replica lane carrying the lane counters
// and ring gauges, and under each lane the replica's inner constituents
// (grouped by their cf.AnnotReplica annotation). This is how a sharded
// data plane stays ONE component to the meta-space while the stats
// capability still resolves per-replica detail.
func (s *ShardedCF) StatsTree() core.StatNode {
	node := core.StatNode{Type: s.TypeName(), Stats: s.Stats()}
	inner := s.Inner()
	replicas := s.Replicas()
	for i := range s.shards {
		lane := core.StatNode{
			Name:  "shard" + strconv.Itoa(i),
			Stats: s.laneStats(i),
		}
		for _, name := range replicas[strconv.Itoa(i)] {
			comp, ok := inner.Component(name)
			if !ok {
				continue
			}
			lane.Children = append(lane.Children, core.ComponentStats(name, comp))
		}
		node.Children = append(node.Children, lane)
	}
	return node
}

// ---------------------------------------------------------------------------
// Per-shard endpoints

// shardIngress is the worker-driven head of one replica: its "out"
// receptacle is the first-class (and therefore interceptable/auditable)
// binding into the replica's entry component.
type shardIngress struct {
	*core.Base
	elementCounters
	out *core.Receptacle[IPacketPush]
	// fuse flattens the interceptor-free prefix of the replica chain into
	// one compiled closure (DESIGN.md §8). Set once in NewShardedCF after
	// Configure wires the replica, before any worker starts; nil only in
	// unit tests that build the endpoint directly.
	fuse *ChainFuser
}

func newShardIngress() *shardIngress {
	g := &shardIngress{Base: core.NewBase(TypeShardIngress)}
	g.out = core.NewReceptacle[IPacketPush](IPacketPushID)
	g.AddReceptacle("out", g.out)
	return g
}

// pushBatch forwards one ring batch into the replica — through the fused
// plan when the chain is clean, hop by hop while it is intercepted or
// mid-mutation.
func (g *shardIngress) pushBatch(b []*Packet) error {
	g.in.Add(uint64(len(b)))
	if g.fuse != nil {
		return g.fuse.Forward(&g.elementCounters, g.out, b)
	}
	return g.forwardBatch(g.out, b)
}

// shardEgress is the tail of one replica: replicas bind their last
// component to it, and it merges into the parent CF's shared "out"
// receptacle. The merge is batch-aware (whole batches cross) and
// concurrent (every shard worker pushes), relying on the downstream
// component's own thread-safety.
type shardEgress struct {
	*core.Base
	elementCounters
	parent *ShardedCF
	lat    *core.Histogram // lane residence histogram; nil unless enabled
}

func newShardEgress(parent *ShardedCF, lat *core.Histogram) *shardEgress {
	e := &shardEgress{Base: core.NewBase(TypeShardEgress), parent: parent, lat: lat}
	e.Provide(IPacketPushID, e)
	return e
}

// latencySample is the single residence-latency predicate for both egress
// paths: unstamped packets (Born <= 0) and clock regressions (now < born)
// yield no sample; a zero duration IS a sample. Push and PushBatch must
// agree on this, or the histogram's population depends on which path a
// packet took (the bug this helper fixes: Push counted d == 0, PushBatch
// silently dropped it).
func latencySample(now, born int64) (uint64, bool) {
	if born <= 0 || now < born {
		return 0, false
	}
	return uint64(now - born), true
}

// Push implements IPacketPush.
func (e *shardEgress) Push(p *Packet) error {
	e.in.Add(1)
	if e.lat != nil {
		if d, ok := latencySample(Nanotime(), p.Born); ok {
			e.lat.Record(d)
		}
	}
	return e.forward(e.parent.out, p)
}

// PushBatch implements IPacketPushBatch. Latency is recorded against one
// clock read for the whole batch, before the downstream hand-off, so the
// lane histogram measures intake-to-egress residence (ring wait plus the
// replica traversal), not the consumer beyond the merge.
func (e *shardEgress) PushBatch(batch []*Packet) error {
	e.in.Add(uint64(len(batch)))
	if e.lat != nil {
		now := Nanotime()
		for _, p := range batch {
			if d, ok := latencySample(now, p.Born); ok {
				e.lat.Record(d)
			}
		}
	}
	return e.forwardBatch(e.parent.out, batch)
}

var (
	_ core.Starter     = (*ShardedCF)(nil)
	_ core.Stopper     = (*ShardedCF)(nil)
	_ IPacketPushBatch = (*ShardedCF)(nil)
	_ IPacketPushBatch = (*shardEgress)(nil)
	_ StatsReporter    = (*ShardedCF)(nil)
	_ core.IStats      = (*ShardedCF)(nil)
	_ core.IStatsTree  = (*ShardedCF)(nil)
	_ core.Component   = (*ShardedCF)(nil)
)
