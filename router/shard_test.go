package router

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strconv"
	"sync"
	"testing"
	"time"

	"netkit/cf"
	"netkit/core"
	"netkit/packet"
)

// ---- fixtures -------------------------------------------------------------

// mkFlowPacket builds a UDP/IPv4 packet of flow `flow` carrying sequence
// number `seq` in its payload, so delivery order is checkable per flow.
func mkFlowPacket(t testing.TB, flow, seq uint32) *Packet {
	t.Helper()
	src := netip.AddrFrom4([4]byte{10, 0, byte(flow >> 8), byte(flow)})
	dst := netip.AddrFrom4([4]byte{192, 168, byte(flow >> 8), byte(flow)})
	payload := make([]byte, 8)
	binary.BigEndian.PutUint32(payload[0:], flow)
	binary.BigEndian.PutUint32(payload[4:], seq)
	raw, err := packet.BuildUDP4(src, dst, uint16(1000+flow%100), 53, 64, payload)
	if err != nil {
		t.Fatal(err)
	}
	return NewPacket(raw)
}

// flowSeq decodes what mkFlowPacket encoded.
func flowSeq(p *Packet) (flow, seq uint32) {
	payload := p.Data[packet.IPv4HeaderLen+packet.UDPHeaderLen:]
	return binary.BigEndian.Uint32(payload[0:]), binary.BigEndian.Uint32(payload[4:])
}

// recordingSink is a concurrency-safe terminal component recording the
// per-flow delivery sequence, the property the sharded CF must preserve.
// With failMod >= 2 it additionally FAILS (after recording and releasing)
// every packet whose flow+seq is a multiple of failMod — a deterministic
// per-packet predicate, so batched and per-packet drives fail identical
// packets and upstream error accounting can be compared exactly. Batch
// failures are reported with per-packet cardinality via BatchError, the
// contract upstream books depend on.
type recordingSink struct {
	*core.Base
	mu      sync.Mutex
	flows   map[uint32][]uint32
	count   int
	failMod uint32
}

func (s *recordingSink) fails(flow, seq uint32) bool {
	return s.failMod >= 2 && (flow+seq)%s.failMod == 0
}

func newRecordingSink() *recordingSink {
	s := &recordingSink{Base: core.NewBase("test.RecordingSink"), flows: make(map[uint32][]uint32)}
	s.Provide(IPacketPushID, s)
	return s
}

func (s *recordingSink) Push(p *Packet) error {
	flow, seq := flowSeq(p)
	s.mu.Lock()
	s.flows[flow] = append(s.flows[flow], seq)
	s.count++
	s.mu.Unlock()
	p.Release()
	if s.fails(flow, seq) {
		return errFlaky
	}
	return nil
}

func (s *recordingSink) PushBatch(batch []*Packet) error {
	failed := 0
	s.mu.Lock()
	for _, p := range batch {
		flow, seq := flowSeq(p)
		s.flows[flow] = append(s.flows[flow], seq)
		s.count++
		if s.fails(flow, seq) {
			failed++
		}
	}
	s.mu.Unlock()
	for _, p := range batch {
		p.Release()
	}
	if failed > 0 {
		return &BatchError{Failed: failed, Err: errFlaky}
	}
	return nil
}

func (s *recordingSink) total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// perFlowInOrder fails the test unless every flow's recorded sequence is
// exactly 0..len-1 in order.
func (s *recordingSink) perFlowInOrder(t *testing.T) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	for flow, seqs := range s.flows {
		for i, got := range seqs {
			if got != uint32(i) {
				t.Fatalf("flow %d: position %d has seq %d (sequence %v...)",
					flow, i, got, seqs[:i+1])
			}
		}
	}
}

// counterReplica is the simplest compliant replica: one counter piped to
// the shard egress.
func counterReplica(shard int, fw *cf.Framework) (string, error) {
	name := ShardName(shard, "cnt")
	if err := fw.Admit(name, NewCounter()); err != nil {
		return "", err
	}
	if _, err := fw.Capsule().Bind(name, "out", ShardName(shard, "egress"), IPacketPushID); err != nil {
		return "", err
	}
	return name, nil
}

// buildSharded returns a started n-shard CF wired to a recording sink.
func buildSharded(t *testing.T, n int, build ReplicaFactory) (*core.Capsule, *ShardedCF, *recordingSink) {
	t.Helper()
	capsule := core.NewCapsule("shardtest")
	s, err := NewShardedCF(capsule, ShardConfig{Shards: n}, build)
	if err != nil {
		t.Fatal(err)
	}
	sink := newRecordingSink()
	if err := capsule.Insert("sharded", s); err != nil {
		t.Fatal(err)
	}
	if err := capsule.Insert("sink", sink); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(capsule, "sharded", "out", "sink"); err != nil {
		t.Fatal(err)
	}
	if err := capsule.StartAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = capsule.StopAll(context.Background()) })
	return capsule, s, sink
}

func quiesce(t *testing.T, s *ShardedCF) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Quiesce(ctx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
}

// ---- construction and shape ----------------------------------------------

func TestShardedCFValidation(t *testing.T) {
	capsule := core.NewCapsule("v")
	if _, err := NewShardedCF(capsule, ShardConfig{Shards: 0}, counterReplica); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := NewShardedCF(capsule, ShardConfig{Shards: 2}, nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	failing := func(shard int, fw *cf.Framework) (string, error) {
		return "", errors.New("boom")
	}
	if _, err := NewShardedCF(capsule, ShardConfig{Shards: 2}, failing); err == nil {
		t.Fatal("factory failure not propagated")
	}
}

// TestShardedCFReplicaEnumeration proves the architecture meta-space sees
// the shards: one replica group per shard, each holding its ingress,
// egress and factory-built members, all annotated with the shard index.
func TestShardedCFReplicaEnumeration(t *testing.T) {
	_, s, _ := buildSharded(t, 3, counterReplica)
	if s.Shards() != 3 {
		t.Fatalf("Shards() = %d", s.Shards())
	}
	groups := s.Replicas()
	if len(groups) != 3 {
		t.Fatalf("replica groups = %d (%v)", len(groups), groups)
	}
	for i := 0; i < 3; i++ {
		idx := fmt.Sprint(i)
		want := map[string]bool{
			ShardName(i, "cnt"): true, ShardName(i, "egress"): true, ShardName(i, "ingress"): true,
		}
		if len(groups[idx]) != len(want) {
			t.Fatalf("replica %d members %v", i, groups[idx])
		}
		for _, name := range groups[idx] {
			if !want[name] {
				t.Fatalf("replica %d has unexpected member %q", i, name)
			}
		}
	}
}

// ---- dispatch correctness -------------------------------------------------

// TestShardedCFDeliversAllPerFlowInOrder pushes interleaved flows through
// a 4-shard CF in mixed batch sizes and checks complete, per-flow-ordered
// delivery plus dispatcher/shard/egress count conservation.
func TestShardedCFDeliversAllPerFlowInOrder(t *testing.T) {
	_, s, sink := buildSharded(t, 4, counterReplica)
	const flows, perFlow = 16, 200
	seqs := make([]uint32, flows)
	batch := GetBatch()
	total := 0
	for round := 0; round < perFlow; round++ {
		for f := uint32(0); f < flows; f++ {
			batch = append(batch, mkFlowPacket(t, f, seqs[f]))
			seqs[f]++
			total++
			if len(batch) == 24 {
				if err := s.PushBatch(batch); err != nil {
					t.Fatal(err)
				}
				batch = batch[:0]
			}
		}
	}
	if err := s.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	PutBatch(batch)
	quiesce(t, s)
	if got := sink.total(); got != total {
		t.Fatalf("sink received %d of %d", got, total)
	}
	sink.perFlowInOrder(t)

	stats := s.ElemStats()
	if stats.In != uint64(total) || stats.Out != uint64(total) || stats.Dropped != 0 {
		t.Fatalf("aggregate stats %+v, want in=out=%d", stats, total)
	}
	var perShard uint64
	for i := 0; i < s.Shards(); i++ {
		st := s.ShardStats(i)
		if st.In != st.Out {
			t.Fatalf("shard %d leaked: %+v", i, st)
		}
		perShard += st.In
	}
	if perShard != uint64(total) {
		t.Fatalf("per-shard sum %d != dispatched %d", perShard, total)
	}
}

// TestShardedCFFlowAffinity proves RSS affinity: one flow's packets are
// serviced by exactly one shard.
func TestShardedCFFlowAffinity(t *testing.T) {
	_, s, sink := buildSharded(t, 4, counterReplica)
	const n = 64
	for seq := uint32(0); seq < n; seq++ {
		if err := s.Push(mkFlowPacket(t, 7, seq)); err != nil {
			t.Fatal(err)
		}
	}
	quiesce(t, s)
	if sink.total() != n {
		t.Fatalf("sink received %d of %d", sink.total(), n)
	}
	busy := 0
	for i := 0; i < s.Shards(); i++ {
		if st := s.ShardStats(i); st.In > 0 {
			busy++
			if st.In != n {
				t.Fatalf("shard %d saw %d of %d", i, st.In, n)
			}
		}
	}
	if busy != 1 {
		t.Fatalf("one flow touched %d shards", busy)
	}
}

// TestShardedCFSpreadsFlows sanity-checks the dispatcher actually fans
// out: many flows must occupy every shard of a 4-shard CF.
func TestShardedCFSpreadsFlows(t *testing.T) {
	_, s, _ := buildSharded(t, 4, counterReplica)
	for f := uint32(0); f < 256; f++ {
		if err := s.Push(mkFlowPacket(t, f, 0)); err != nil {
			t.Fatal(err)
		}
	}
	quiesce(t, s)
	for i := 0; i < s.Shards(); i++ {
		if st := s.ShardStats(i); st.In == 0 {
			t.Fatalf("shard %d idle across 256 flows", i)
		}
	}
}

// ---- lifecycle ------------------------------------------------------------

// TestShardedCFStopDrainsThenRefuses: packets accepted before Stop are all
// delivered (the workers drain their rings), packets after Stop are
// refused with ErrStopped and counted as dispatcher drops.
func TestShardedCFStopDrainsThenRefuses(t *testing.T) {
	capsule, s, sink := buildSharded(t, 2, counterReplica)
	const n = 500
	batch := GetBatch()
	for i := uint32(0); i < n; i++ {
		batch = append(batch, mkFlowPacket(t, i%8, i/8))
		if len(batch) == 32 {
			if err := s.PushBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := s.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	PutBatch(batch)
	if err := capsule.StopComponent(context.Background(), "sharded"); err != nil {
		t.Fatal(err)
	}
	if got := sink.total(); got != n {
		t.Fatalf("sink received %d of %d accepted before Stop", got, n)
	}
	if err := s.Push(mkFlowPacket(t, 1, 0)); !errors.Is(err, ErrStopped) {
		t.Fatalf("push after stop: %v", err)
	}
	if s.ElemStats().Dropped != 1 {
		t.Fatalf("refused packet not counted: %+v", s.Stats())
	}
	// Restart: the CF accepts traffic again.
	if err := capsule.StartComponent(context.Background(), "sharded"); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(mkFlowPacket(t, 1, 0)); err != nil {
		t.Fatal(err)
	}
	quiesce(t, s)
	if got := sink.total(); got != n+1 {
		t.Fatalf("sink received %d, want %d", got, n+1)
	}
}

// ---- interception ---------------------------------------------------------

// TestShardedCFInterceptAggregates installs ONE audit across all replica
// ingress bindings and checks it counts every packet exactly once —
// aggregated across shards — whether the chain sees Push or PushBatch ops.
func TestShardedCFInterceptAggregates(t *testing.T) {
	_, s, sink := buildSharded(t, 4, counterReplica)
	var audited uint64
	var mu sync.Mutex
	around := core.PrePost(func(op string, args []any) {
		mu.Lock()
		audited += uint64(PacketCount(op, args))
		mu.Unlock()
	}, nil)
	if err := s.Intercept("ingress", "out", "audit", around); err != nil {
		t.Fatal(err)
	}
	const total = 600
	batch := GetBatch()
	for i := uint32(0); i < total; i++ {
		batch = append(batch, mkFlowPacket(t, i%32, i/32))
		if len(batch) == 16 {
			if err := s.PushBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := s.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	PutBatch(batch)
	quiesce(t, s)
	mu.Lock()
	got := audited
	mu.Unlock()
	if got != total {
		t.Fatalf("audit counted %d of %d", got, total)
	}
	if sink.total() != total {
		t.Fatalf("sink received %d of %d", sink.total(), total)
	}
	// Removal re-fuses every replica; traffic keeps flowing uncounted.
	if err := s.Unintercept("ingress", "out", "audit"); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(mkFlowPacket(t, 1, 99)); err != nil {
		t.Fatal(err)
	}
	quiesce(t, s)
	mu.Lock()
	after := audited
	mu.Unlock()
	if after != total {
		t.Fatalf("audit still counting after removal: %d", after)
	}
}

// TestShardedCFInterceptAllOrNothing pre-installs a colliding interceptor
// on one replica's binding: the all-replica install must fail and leave
// every other replica's chain empty.
func TestShardedCFInterceptAllOrNothing(t *testing.T) {
	_, s, _ := buildSharded(t, 3, counterReplica)
	inner := s.Inner()
	noop := core.PrePost(nil, nil)

	// Pre-install "clash" on shard 1's ingress binding only.
	var shard1 *core.Binding
	for _, b := range inner.BindingsOf(ShardName(1, "ingress")) {
		from, recp := b.From()
		if from == ShardName(1, "ingress") && recp == "out" {
			shard1 = b
		}
	}
	if shard1 == nil {
		t.Fatal("shard 1 ingress binding not found")
	}
	if err := shard1.AddInterceptor(core.Interceptor{Name: "clash", Wrap: noop}); err != nil {
		t.Fatal(err)
	}
	if err := s.Intercept("ingress", "out", "clash", noop); !errors.Is(err, core.ErrAlreadyExists) {
		t.Fatalf("want ErrAlreadyExists, got %v", err)
	}
	for i := 0; i < 3; i++ {
		var b *core.Binding
		for _, cand := range inner.BindingsOf(ShardName(i, "ingress")) {
			from, recp := cand.From()
			if from == ShardName(i, "ingress") && recp == "out" {
				b = cand
			}
		}
		want := 0
		if i == 1 {
			want = 1 // only the pre-installed interceptor
		}
		if got := len(b.Interceptors()); got != want {
			t.Fatalf("shard %d chain %v after failed install", i, b.Interceptors())
		}
	}
	if err := s.Intercept("nosuch", "out", "x", noop); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("unknown endpoint: %v", err)
	}
}

// ---- reconfiguration under load -------------------------------------------

// queueReplica builds ingress -> FIFO queue -> RR link scheduler -> egress:
// a replica with buffered state, so hot-swapping the queue exercises
// Exportable migration.
func queueReplica(capacity int) ReplicaFactory {
	return func(shard int, fw *cf.Framework) (string, error) {
		qName := ShardName(shard, "queue")
		sName := ShardName(shard, "sched")
		q, err := NewFIFOQueue(capacity)
		if err != nil {
			return "", err
		}
		if err := fw.Admit(qName, q); err != nil {
			return "", err
		}
		sched, err := NewLinkScheduler(PolicyRR)
		if err != nil {
			return "", err
		}
		if err := sched.AddInput("in0", 1500, 0); err != nil {
			return "", err
		}
		if err := fw.Admit(sName, sched); err != nil {
			return "", err
		}
		if _, err := fw.Capsule().Bind(sName, "in0", qName, IPacketPullID); err != nil {
			return "", err
		}
		if _, err := fw.Capsule().Bind(sName, "out", ShardName(shard, "egress"), IPacketPushID); err != nil {
			return "", err
		}
		return qName, nil
	}
}

// waitSinkTotal polls until the sink has received want packets.
func waitSinkTotal(t *testing.T, sink *recordingSink, want int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for sink.total() != want {
		if time.Now().After(deadline) {
			t.Fatalf("sink stuck at %d of %d", sink.total(), want)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestShardedCFHotSwapLosslessUnderLoad is the reconfig-under-traffic
// stress test: producers drive all shards at full rate while the buffered
// queue component of EVERY replica is hot-swapped (twice), with Exportable
// state migration. Afterwards: zero packet loss (every sent packet reaches
// the sink exactly once, in per-flow order) and audit-count conservation
// across shards (dispatcher in == sum of per-shard in == sink out, no
// drops anywhere).
func TestShardedCFHotSwapLosslessUnderLoad(t *testing.T) {
	const (
		shards    = 4
		producers = 3
		perProd   = 400 // batches per producer
		batchSz   = 8
		flows     = 24
	)
	_, s, sink := buildSharded(t, shards, queueReplica(1<<15))

	var seqMu sync.Mutex
	seqs := make([]uint32, flows)
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				// Sequence numbers are assigned under one lock so the
				// global per-flow order is well-defined even with several
				// producers; the batch is pushed under the same lock to
				// keep assignment order and dispatch order identical.
				seqMu.Lock()
				batch := GetBatch()
				for j := 0; j < batchSz; j++ {
					f := (i*batchSz + j) % flows
					batch = append(batch, mkFlowPacket(t, uint32(f), seqs[f]))
					seqs[f]++
				}
				err := s.PushBatch(batch)
				seqMu.Unlock()
				PutBatch(batch)
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// Two full-fleet hot-swaps while the producers hammer every shard.
	for swap := 0; swap < 2; swap++ {
		time.Sleep(2 * time.Millisecond)
		oldName, newName := "queue", "queue2"
		if swap == 1 {
			oldName, newName = "queue2", "queue"
		}
		err := s.HotSwap(oldName, newName, func(shard int) (core.Component, error) {
			return NewFIFOQueue(1 << 15)
		})
		if err != nil {
			t.Fatalf("hot-swap %d: %v", swap, err)
		}
	}
	wg.Wait()
	total := producers * perProd * batchSz
	quiesce(t, s) // rings drained into the (new) queues
	waitSinkTotal(t, sink, total)
	sink.perFlowInOrder(t)

	// Audit-count conservation: dispatcher in == sum of shard ins == sink
	// deliveries, and nothing dropped anywhere in the sharded CF.
	stats := s.ElemStats()
	if stats.In != uint64(total) || stats.Dropped != 0 || stats.Errors != 0 {
		t.Fatalf("aggregate stats %+v, want in=%d dropped=0", stats, total)
	}
	var perShard uint64
	for i := 0; i < shards; i++ {
		st := s.ShardStats(i)
		if st.Dropped != 0 || st.Errors != 0 {
			t.Fatalf("shard %d lost packets: %+v", i, st)
		}
		perShard += st.In
	}
	if perShard != uint64(total) {
		t.Fatalf("per-shard sum %d != sent %d", perShard, total)
	}
	if stats.Out != uint64(total) {
		t.Fatalf("egress merged %d of %d", stats.Out, total)
	}
}

// TestShardedCFHotSwapNamesFailingShard: a replacement factory failure
// surfaces the shard index and leaves the workers running.
func TestShardedCFHotSwapFactoryFailure(t *testing.T) {
	_, s, sink := buildSharded(t, 2, queueReplica(64))
	err := s.HotSwap("queue", "queue2", func(shard int) (core.Component, error) {
		return nil, errors.New("no replacement")
	})
	if err == nil {
		t.Fatal("factory failure not propagated")
	}
	// The CF still forwards after the failed swap.
	if err := s.Push(mkFlowPacket(t, 3, 0)); err != nil {
		t.Fatal(err)
	}
	quiesce(t, s)
	waitSinkTotal(t, sink, 1)
}

// ---- gate ------------------------------------------------------------------

// TestGateDo proves the worker-side gate contract: Pause waits out an
// in-flight Do and blocks subsequent Dos until Resume.
func TestGateDo(t *testing.T) {
	var g Gate
	inFlight := make(chan struct{})
	release := make(chan struct{})
	go g.Do(func() { close(inFlight); <-release })
	<-inFlight

	paused := make(chan struct{})
	go func() {
		g.Pause()
		close(paused)
	}()
	select {
	case <-paused:
		t.Fatal("Pause returned while a Do was in flight")
	case <-time.After(10 * time.Millisecond):
	}
	close(release)
	select {
	case <-paused:
	case <-time.After(2 * time.Second):
		t.Fatal("Pause never acquired the gate")
	}

	ran := make(chan struct{})
	go g.Do(func() { close(ran) })
	select {
	case <-ran:
		t.Fatal("Do ran while paused")
	case <-time.After(10 * time.Millisecond):
	}
	g.Resume()
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("Do never resumed")
	}
}

// ---- the SPSC ring ---------------------------------------------------------

// TestSPSCRingTransfersInOrder moves batches through the ring with a
// concurrent producer and consumer, checking order, completeness, and the
// blocking-enqueue back-pressure path (ring depth far smaller than the
// transfer count).
func TestSPSCRingTransfersInOrder(t *testing.T) {
	r := newSPSCRing(8)
	quit := make(chan struct{})
	const n = 20000
	done := make(chan error, 1)
	go func() {
		next := 0
		for next < n {
			b, ok := r.tryDequeue()
			if !ok {
				select {
				case <-r.wake:
				case <-time.After(5 * time.Second):
					done <- fmt.Errorf("consumer stalled at %d", next)
					return
				}
				continue
			}
			if len(b) != 1 {
				done <- fmt.Errorf("batch len %d", len(b))
				return
			}
			if _, seq := flowSeq(b[0]); seq != uint32(next) {
				done <- fmt.Errorf("batch %d arrived at position %d", seq, next)
				return
			}
			next++
		}
		done <- nil
	}()
	for i := 0; i < n; i++ {
		if !r.enqueue([]*Packet{mkFlowPacket(t, 1, uint32(i))}, quit) {
			t.Fatal("enqueue refused with quit open")
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, ok := r.tryDequeue(); ok {
		t.Fatal("ring not empty after transfer")
	}
}

func TestSPSCRingQuitUnblocksProducer(t *testing.T) {
	r := newSPSCRing(2)
	quit := make(chan struct{})
	for r.tryEnqueue(nil) {
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(quit)
	}()
	start := time.Now()
	if r.enqueue(nil, quit) {
		t.Fatal("enqueue into a full ring with no consumer succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("enqueue did not unblock promptly on quit")
	}
	if r.len() != r.capacityForTest() {
		t.Fatalf("ring len %d changed by refused enqueue", r.len())
	}
}

// capacityForTest reports the ring capacity (test helper).
func (r *spscRing) capacityForTest() int { return len(r.buf) }

// ---- flow hash -------------------------------------------------------------

// TestFlowHashIgnoresNonFlowFields: per-hop mutation (TTL, checksum) and
// payload must not move a flow between shards.
func TestFlowHashIgnoresNonFlowFields(t *testing.T) {
	p1 := mkFlowPacket(t, 42, 0)
	p2 := mkFlowPacket(t, 42, 999) // same flow, different payload
	if FlowHash(p1) != FlowHash(p2) {
		t.Fatal("payload changed the flow hash")
	}
	if err := packet.DecrementTTL(p1.Data); err != nil {
		t.Fatal(err)
	}
	if FlowHash(p1) != FlowHash(p2) {
		t.Fatal("TTL decrement changed the flow hash")
	}
	if FlowHash(p1) != FlowHash(p1) {
		t.Fatal("hash not deterministic")
	}
	p3 := mkFlowPacket(t, 43, 0)
	if FlowHash(p1) == FlowHash(p3) {
		t.Fatal("distinct flows collided (bad test fixture or degenerate hash)")
	}
}

func TestFlowHashHandlesGarbage(t *testing.T) {
	inputs := [][]byte{nil, {}, {0x45}, {0x60, 1, 2}, make([]byte, 19), make([]byte, 39), {0xff, 0xff}}
	for _, in := range inputs {
		if got := FlowHashRaw(in); got != 0 {
			t.Fatalf("unparseable input %v hashed to %d, want 0", in, got)
		}
	}
}

func TestFlowHashIPv6(t *testing.T) {
	src := netip.MustParseAddr("2001:db8::1")
	dst := netip.MustParseAddr("2001:db8::2")
	a, err := packet.BuildUDP6(src, dst, 1000, 53, 64, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := packet.BuildUDP6(src, dst, 1000, 53, 64, []byte("yy"))
	if err != nil {
		t.Fatal(err)
	}
	if FlowHashRaw(a) != FlowHashRaw(b) {
		t.Fatal("same v6 flow hashed apart")
	}
	c, err := packet.BuildUDP6(src, dst, 1001, 53, 64, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if FlowHashRaw(a) == FlowHashRaw(c) {
		t.Fatal("v6 port ignored")
	}
	if err := packet.DecrementHopLimit(a); err != nil {
		t.Fatal(err)
	}
	if FlowHashRaw(a) != FlowHashRaw(b) {
		t.Fatal("hop-limit decrement changed the v6 flow hash")
	}
}

// TestFlowShardBalance: across many flows, no shard of 4 should be starved
// or hogged beyond 2x the fair share (loose bound; FNV over real tuples).
func TestFlowShardBalance(t *testing.T) {
	counts := make([]int, 4)
	const flows = 4096
	for f := uint32(0); f < flows; f++ {
		counts[FlowShard(mkFlowPacket(t, f, 0), 4)]++
	}
	fair := flows / 4
	for i, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Fatalf("shard %d has %d of %d flows (distribution %v)", i, c, flows, counts)
		}
	}
}

// TestShardedCFHotSwapRetryAfterPartialFailure: when a fleet swap fails
// partway (some replicas swapped, some not), retrying with the same
// arguments skips the already-swapped replicas and completes the rest,
// leaving every replica on the new component and traffic flowing.
func TestShardedCFHotSwapRetryAfterPartialFailure(t *testing.T) {
	_, s, sink := buildSharded(t, 3, queueReplica(64))
	calls := 0
	failSecond := func(shard int) (core.Component, error) {
		calls++
		if calls == 2 {
			return nil, errors.New("transient")
		}
		return NewFIFOQueue(64)
	}
	if err := s.HotSwap("queue", "queue2", failSecond); err == nil {
		t.Fatal("partial failure not reported")
	}
	// Shard 0 swapped, shards 1..2 did not.
	inner := s.Inner()
	if _, ok := inner.Component(ShardName(0, "queue2")); !ok {
		t.Fatal("shard 0 not swapped before the failure")
	}
	if _, ok := inner.Component(ShardName(1, "queue")); !ok {
		t.Fatal("shard 1 unexpectedly swapped")
	}
	// Retry with a working factory: only the unswapped replicas are
	// re-attempted, and the fleet converges.
	made := 0
	if err := s.HotSwap("queue", "queue2", func(shard int) (core.Component, error) {
		made++
		return NewFIFOQueue(64)
	}); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if made != 2 {
		t.Fatalf("retry built %d replacements, want 2 (shard 0 already swapped)", made)
	}
	for i := 0; i < 3; i++ {
		if _, ok := inner.Component(ShardName(i, "queue2")); !ok {
			t.Fatalf("shard %d missing queue2 after retry", i)
		}
		if _, ok := inner.Component(ShardName(i, "queue")); ok {
			t.Fatalf("shard %d still has the old queue after retry", i)
		}
	}
	// A swap whose old name exists nowhere fails loudly.
	if err := s.HotSwap("nosuch", "x", func(int) (core.Component, error) {
		return NewFIFOQueue(8)
	}); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("unknown component: %v", err)
	}
	// The converged fleet still forwards.
	const n = 40
	for i := uint32(0); i < n; i++ {
		if err := s.Push(mkFlowPacket(t, i%6, i/6)); err != nil {
			t.Fatal(err)
		}
	}
	quiesce(t, s)
	waitSinkTotal(t, sink, n)
}

// TestShardedCFHotSwapRetryAfterInsertFailure covers router.HotSwap's
// failure-after-insert mode: a replacement lacking the old component's
// receptacles is rejected AFTER being inserted, leaving the shard with
// both old and new names. The fleet retry must clean up the abandoned
// remnant and converge.
func TestShardedCFHotSwapRetryAfterInsertFailure(t *testing.T) {
	_, s, sink := buildSharded(t, 3, counterReplica)
	badOnShard1 := func(shard int) (core.Component, error) {
		if shard == 1 {
			return NewDropper(), nil // lacks the "out" receptacle cnt carries
		}
		return NewCounter(), nil
	}
	if err := s.HotSwap("cnt", "cnt2", badOnShard1); err == nil {
		t.Fatal("receptacle-less replacement accepted")
	}
	inner := s.Inner()
	if _, ok := inner.Component(ShardName(1, "cnt")); !ok {
		t.Fatal("shard 1 lost its old component on the failed swap")
	}
	if _, ok := inner.Component(ShardName(1, "cnt2")); !ok {
		t.Fatal("expected the abandoned replacement to still be inserted")
	}
	if err := s.HotSwap("cnt", "cnt2", func(int) (core.Component, error) {
		return NewCounter(), nil
	}); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := inner.Component(ShardName(i, "cnt2")); !ok {
			t.Fatalf("shard %d missing cnt2 after retry", i)
		}
		if _, ok := inner.Component(ShardName(i, "cnt")); ok {
			t.Fatalf("shard %d still has cnt after retry", i)
		}
	}
	const n = 30
	for i := uint32(0); i < n; i++ {
		if err := s.Push(mkFlowPacket(t, i%5, i/5)); err != nil {
			t.Fatal(err)
		}
	}
	quiesce(t, s)
	waitSinkTotal(t, sink, n)
	sink.perFlowInOrder(t)
}

// ---- active-lane rescaling -------------------------------------------------

// TestSetActiveShardsRescaleUnderTraffic drives continuous multi-flow
// traffic through a 4-lane CF while repeatedly rescaling the dispatcher
// 1 -> 4 -> 2 -> 4 lanes. The contract matches HotSwap's: zero loss
// (back-pressure during the drain window, never drops) and per-flow
// order preserved across every rescale, because a rescale only commits
// once every accepted packet has drained through its old lane.
func TestSetActiveShardsRescaleUnderTraffic(t *testing.T) {
	_, s, sink := buildShardedActive(t, 4, 1, counterReplica)
	if got := s.ActiveShards(); got != 1 {
		t.Fatalf("initial active = %d, want 1", got)
	}

	const flows = 16
	const perFlow = 800
	done := make(chan struct{})
	go func() {
		defer close(done)
		seqs := make([]uint32, flows)
		for round := 0; round < perFlow; round++ {
			batch := GetBatch()
			for f := 0; f < flows; f++ {
				batch = append(batch, mkFlowPacket(t, uint32(f), seqs[f]))
				seqs[f]++
			}
			if err := s.PushBatch(batch); err != nil {
				t.Error(err)
			}
			PutBatch(batch)
		}
	}()
	for _, target := range []int{4, 2, 4} {
		time.Sleep(2 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := s.SetActiveShards(ctx, target); err != nil {
			t.Fatal(err)
		}
		cancel()
		if got := s.ActiveShards(); got != target {
			t.Fatalf("active = %d, want %d", got, target)
		}
	}
	<-done
	quiesce(t, s)

	const total = flows * perFlow
	waitSinkTotal(t, sink, total)
	sink.perFlowInOrder(t)
	if st := s.ElemStats(); st.In != total || st.Out != total || st.Dropped != 0 {
		t.Fatalf("stats %+v, want in=out=%d dropped=0", st, total)
	}
	// The annotation tracks the final lane count for the meta-space.
	if v := s.Annotations()[AnnotActiveShards]; v != "4" {
		t.Fatalf("annotation %q, want 4", v)
	}
	// Clamping: out-of-range targets saturate instead of failing.
	ctx := context.Background()
	if err := s.SetActiveShards(ctx, 99); err != nil {
		t.Fatal(err)
	}
	if got := s.ActiveShards(); got != 4 {
		t.Fatalf("clamped high = %d, want 4", got)
	}
	if err := s.SetActiveShards(ctx, -3); err != nil {
		t.Fatal(err)
	}
	if got := s.ActiveShards(); got != 1 {
		t.Fatalf("clamped low = %d, want 1", got)
	}
}

// buildShardedActive is buildSharded with an explicit initial active-lane
// count.
func buildShardedActive(t *testing.T, n, active int, build ReplicaFactory) (*core.Capsule, *ShardedCF, *recordingSink) {
	t.Helper()
	capsule := core.NewCapsule("shardtest")
	s, err := NewShardedCF(capsule, ShardConfig{Shards: n, ActiveShards: active}, build)
	if err != nil {
		t.Fatal(err)
	}
	sink := newRecordingSink()
	if err := capsule.Insert("sharded", s); err != nil {
		t.Fatal(err)
	}
	if err := capsule.Insert("sink", sink); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(capsule, "sharded", "out", "sink"); err != nil {
		t.Fatal(err)
	}
	if err := capsule.StartAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = capsule.StopAll(context.Background()) })
	return capsule, s, sink
}

// ---- latency histograms ----------------------------------------------------

// TestShardedCFLatencyHistogram asserts the LatencyHistogram option closes
// the loop from hot-path stamping to the stats tree: every delivered packet
// is recorded in exactly one lane's StatLatency histogram, the CF-level
// stat is the bucket-wise merge of the lanes, and quantiles answer
// plausibly (positive, and at least the sleep injected into one replica).
func TestShardedCFLatencyHistogram(t *testing.T) {
	const shards, packets = 4, 400
	capsule := core.NewCapsule("shardtest")
	s, err := NewShardedCF(capsule, ShardConfig{Shards: shards, LatencyHistogram: true}, counterReplica)
	if err != nil {
		t.Fatal(err)
	}
	sink := newRecordingSink()
	if err := capsule.Insert("sharded", s); err != nil {
		t.Fatal(err)
	}
	if err := capsule.Insert("sink", sink); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(capsule, "sharded", "out", "sink"); err != nil {
		t.Fatal(err)
	}
	if err := capsule.StartAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = capsule.StopAll(context.Background()) })

	batch := GetBatch()
	for i := 0; i < packets; i++ {
		batch = append(batch, mkFlowPacket(t, uint32(i%37), uint32(i/37)))
		if len(batch) == 32 {
			if err := s.PushBatch(batch); err != nil {
				t.Fatal(err)
			}
			batch = GetBatch()
		}
	}
	if len(batch) > 0 {
		if err := s.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	quiesce(t, s)

	tree := s.StatsTree()
	var laneTotal uint64
	var laneMerged *core.HistSnapshot
	for i := 0; i < shards; i++ {
		lane, ok := tree.Find("shard" + strconv.Itoa(i))
		if !ok {
			t.Fatalf("no lane shard%d in stats tree", i)
		}
		st, ok := lane.Stat(StatLatency)
		if !ok {
			t.Fatalf("lane shard%d has no %s stat", i, StatLatency)
		}
		if st.Kind != core.KindHistogram || st.Hist == nil || st.Unit != "ns" {
			t.Fatalf("lane shard%d latency stat malformed: %+v", i, st)
		}
		laneTotal += st.Hist.Count
		laneMerged = laneMerged.Merge(st.Hist)
	}
	if laneTotal != packets {
		t.Fatalf("lanes recorded %d observations, want %d", laneTotal, packets)
	}
	root, ok := tree.Stat(StatLatency)
	if !ok {
		t.Fatalf("CF root has no %s stat", StatLatency)
	}
	if root.Hist.Count != packets || root.Value != float64(packets) {
		t.Fatalf("root histogram count %d/%v, want %d", root.Hist.Count, root.Value, packets)
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if got, want := root.Hist.Quantile(q), laneMerged.Quantile(q); got != want {
			t.Fatalf("root q%.3f = %v, lane merge says %v", q, got, want)
		}
	}
	if p50 := root.Hist.Quantile(0.5); p50 <= 0 {
		t.Fatalf("p50 residence %v should be positive", p50)
	}
}

// TestShardedCFLatencyRespectsUpstreamStamp asserts a Born stamped by an
// upstream driver (end-to-end measurement) is preserved, so the lane
// histogram reflects the driver's clock origin, not the dispatcher's.
func TestShardedCFLatencyRespectsUpstreamStamp(t *testing.T) {
	capsule := core.NewCapsule("shardtest")
	s, err := NewShardedCF(capsule, ShardConfig{Shards: 1, LatencyHistogram: true}, counterReplica)
	if err != nil {
		t.Fatal(err)
	}
	sink := newRecordingSink()
	if err := capsule.Insert("sharded", s); err != nil {
		t.Fatal(err)
	}
	if err := capsule.Insert("sink", sink); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(capsule, "sharded", "out", "sink"); err != nil {
		t.Fatal(err)
	}
	if err := capsule.StartAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = capsule.StopAll(context.Background()) })

	const upstream = 40 * time.Millisecond
	time.Sleep(upstream + 5*time.Millisecond) // ensure the clock is past the offset
	p := mkFlowPacket(t, 1, 0)
	p.Born = Nanotime() - int64(upstream) // stamped 40ms "ago" by a driver
	if err := s.Push(p); err != nil {
		t.Fatal(err)
	}
	quiesce(t, s)
	tree := s.StatsTree()
	st, ok := tree.Stat(StatLatency)
	if !ok || st.Hist.Count != 1 {
		t.Fatalf("expected one latency observation, got %+v", st)
	}
	if min := float64(upstream); st.Hist.Quantile(1) < min {
		t.Fatalf("recorded latency %v ns must include the upstream %v", st.Hist.Quantile(1), upstream)
	}
}
