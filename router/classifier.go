package router

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"netkit/core"
	"netkit/internal/filter"
)

// Classifier routes packets to named outputs according to installed filter
// specifications. It provides IClassifier, honouring §5's rule: "the
// component must honour the semantics of installed filter specifications
// in terms of the particular named outgoing IPacketPush ... interface(s)
// on which each incoming packet should be emitted". Output slots can be
// added and removed at run time — the CF re-checks its rules afterwards.
type Classifier struct {
	*core.Base
	elementCounters
	table *filter.Table

	mu   sync.Mutex // serialises output-set mutators (control path)
	outs map[string]*core.Receptacle[IPacketPush]
	// snap is the data path's copy-on-write view of the output set: one
	// atomic load per packet (or per batch scan), no locks — the same
	// discipline receptacles use. Mutators republish it under mu.
	snap atomic.Pointer[clsOutputs]
	// cache is the megaflow verdict cache (flowcache.go); nil when
	// disabled. Swapped whole on resize, so the data path never sees a
	// half-built cache. It only engages when the compiled table snapshot
	// reports CacheWorthwhile (flow-pure verdicts, non-trivial table).
	cache atomic.Pointer[FlowCache]
}

// clsOutputs is an immutable output-set snapshot.
type clsOutputs struct {
	outs  map[string]*core.Receptacle[IPacketPush]
	deflt *core.Receptacle[IPacketPush] // optional "default" output
}

// publishLocked rebuilds the data-path snapshot. Caller holds c.mu.
func (c *Classifier) publishLocked() {
	outs := make(map[string]*core.Receptacle[IPacketPush], len(c.outs))
	for name, r := range c.outs {
		outs[name] = r
	}
	c.snap.Store(&clsOutputs{outs: outs, deflt: outs["default"]})
}

// NewClassifier creates a classifier with the named output slots. A slot
// named "default" receives unmatched packets; without one, unmatched
// packets are dropped (counted).
func NewClassifier(outputs ...string) (*Classifier, error) {
	if len(outputs) == 0 {
		return nil, fmt.Errorf("router: classifier needs >=1 output")
	}
	c := &Classifier{
		Base:  core.NewBase(TypeClassifier),
		table: filter.NewTable(),
		outs:  make(map[string]*core.Receptacle[IPacketPush], len(outputs)),
	}
	c.publishLocked() // empty snapshot; AddOutput republishes
	c.cache.Store(NewFlowCache(DefaultFlowCacheCap))
	for _, name := range outputs {
		if err := c.AddOutput(name); err != nil {
			return nil, err
		}
	}
	c.Provide(IPacketPushID, c)
	c.Provide(IClassifierID, c)
	return c, nil
}

// AddOutput creates a new named output slot at run time.
func (c *Classifier) AddOutput(name string) error {
	if name == "" {
		return fmt.Errorf("router: empty output name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.outs[name]; ok {
		return fmt.Errorf("router: output %q: %w", name, core.ErrAlreadyExists)
	}
	r := core.NewReceptacle[IPacketPush](IPacketPushID)
	c.outs[name] = r
	c.AddReceptacle(name, r)
	c.publishLocked()
	return nil
}

// RemoveOutput removes an unbound output slot; filters routed to it keep
// their names and simply drop until (if ever) the slot is re-added.
func (c *Classifier) RemoveOutput(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.outs[name]
	if !ok {
		return fmt.Errorf("router: output %q: %w", name, core.ErrNotFound)
	}
	if r.Bound() {
		return fmt.Errorf("router: output %q: %w", name, core.ErrAlreadyBound)
	}
	if err := c.RemoveReceptacle(name); err != nil {
		return err
	}
	delete(c.outs, name)
	c.publishLocked()
	return nil
}

// RegisterFilter implements IClassifier.
func (c *Classifier) RegisterFilter(spec string, priority int, output string) (uint64, error) {
	if _, ok := c.snap.Load().outs[output]; !ok {
		return 0, fmt.Errorf("router: register_filter to unknown output %q: %w",
			output, core.ErrNotFound)
	}
	return c.table.Add(spec, priority, output)
}

// UnregisterFilter implements IClassifier.
func (c *Classifier) UnregisterFilter(id uint64) error {
	return c.table.Remove(id)
}

// FilterOutputs implements IClassifier.
func (c *Classifier) FilterOutputs() []string {
	snap := c.snap.Load()
	out := make([]string, 0, len(snap.outs))
	for n := range snap.outs {
		out = append(out, n)
	}
	return out
}

// Rules returns the installed filter rules (diagnostic).
func (c *Classifier) Rules() []filter.Rule { return c.table.Rules() }

// Push implements IPacketPush.
func (c *Classifier) Push(p *Packet) error {
	c.in.Add(1)
	target := c.resolve(c.snap.Load(), c.table.Snapshot(), c.cache.Load(), p)
	if target == nil {
		c.dropped.Add(1)
		p.Release()
		return nil
	}
	return c.forward(target, p)
}

// pick maps a classification verdict to the output receptacle (nil = drop)
// against this output-set snapshot. Cached verdicts carry the output NAME,
// not the receptacle, so output-topology changes need no invalidation.
func (s *clsOutputs) pick(name string, matched bool) *core.Receptacle[IPacketPush] {
	if matched {
		return s.outs[name]
	}
	return s.deflt
}

// resolve classifies p with the megaflow fast path: probe the verdict
// cache on the packet's flow hash (exact-key, generation-fenced — see
// flowcache.go), fall back to the compiled table on a miss, and install
// the computed verdict for the flow's successors. The cache engages only
// when the table snapshot is flow-safe and big enough to beat a probe;
// otherwise this is exactly the uncached compiled lookup.
func (c *Classifier) resolve(snap *clsOutputs, ts *filter.Snapshot, fc *FlowCache, p *Packet) *core.Receptacle[IPacketPush] {
	if fc != nil && ts.CacheWorthwhile() {
		key := flowKeyOf(p.View())
		h := FlowHash(p)
		if v, ok := fc.probe(h, key, ts.Gen()); ok {
			return snap.pick(v.out, v.matched)
		}
		out, matched := ts.Lookup(p.View())
		fc.insert(h, key, ts.Gen(), flowVerdict{out: out, matched: matched})
		return snap.pick(out, matched)
	}
	out, matched := ts.Lookup(p.View())
	return snap.pick(out, matched)
}

// PushBatch implements IPacketPushBatch: each packet is classified
// individually, then maximal runs routed to the same output are forwarded
// as sub-batches of the incoming slice (no per-output copying), so
// per-output arrival order equals the per-packet path's exactly.
// Unmatched packets with no default output are dropped, as per packet.
// The output-set snapshot, compiled-table snapshot, and cache reference
// are all loaded once for the whole batch, so every packet in the batch
// is classified against one frozen rule generation.
func (c *Classifier) PushBatch(batch []*Packet) error {
	c.in.Add(uint64(len(batch)))
	snap := c.snap.Load()
	ts := c.table.Snapshot()
	fc := c.cache.Load()
	return c.splitRuns(batch, func(p *Packet) *core.Receptacle[IPacketPush] {
		return c.resolve(snap, ts, fc, p)
	})
}

// FlowCache returns the live verdict cache (nil when disabled).
func (c *Classifier) FlowCache() *FlowCache { return c.cache.Load() }

// FlowCacheResize replaces the verdict cache with a fresh one of the given
// capacity (entries; rounded up to the set geometry). capacity <= 0
// disables caching. The swap is atomic: in-flight batches finish against
// the cache they loaded, new batches see the new one — the same hot-swap
// discipline as the output-set snapshot. This is the hook the adapt
// plane's ResizeFlowCache action drives.
func (c *Classifier) FlowCacheResize(capacity int) error {
	if capacity <= 0 {
		c.cache.Store(nil)
		return nil
	}
	c.cache.Store(NewFlowCache(capacity))
	return nil
}

// FlowCacheFlush drops every cached verdict (capacity and counters keep).
func (c *Classifier) FlowCacheFlush() {
	if fc := c.cache.Load(); fc != nil {
		fc.Flush()
	}
}

// Stats implements core.IStats, adding the output-set and filter-table
// sizes so the control plane sees classification capacity, not just flow.
func (c *Classifier) Stats() []core.Stat {
	snap := c.snap.Load()
	stats := append(c.statList(),
		core.G("classifier_outputs", "outputs", float64(len(snap.outs))),
		core.G("classifier_filters", "filters", float64(len(c.table.Rules()))))
	fc := c.cache.Load()
	if fc == nil {
		return append(stats, core.G("flowcache_capacity", "entries", 0))
	}
	hits, misses, evicts := fc.Counters()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	return append(stats,
		core.C("flowcache_hits", "lookups", hits),
		core.C("flowcache_misses", "lookups", misses),
		core.C("flowcache_evictions", "entries", evicts),
		core.G("flowcache_entries", "entries", float64(fc.Len())),
		core.G("flowcache_capacity", "entries", float64(fc.Cap())),
		// Unit "ratio" so CF-root merges AVERAGE lane hit rates rather
		// than summing them, weighted by lookups so an idle lane's stale
		// rate carries nothing (core.MergeStats convention).
		core.GW("flowcache_hitrate", "ratio", rate, float64(hits+misses)))
}

func init() {
	core.Components.MustRegister(TypeClassifier, func(cfg map[string]string) (core.Component, error) {
		n := 1
		if s, ok := cfg["outputs"]; ok {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("router: classifier outputs: %w", err)
			}
			n = v
		}
		names := make([]string, 0, n+1)
		for i := 0; i < n; i++ {
			names = append(names, "out"+strconv.Itoa(i))
		}
		if cfg["default"] != "false" {
			names = append(names, "default")
		}
		c, err := NewClassifier(names...)
		if err != nil {
			return nil, err
		}
		if s, ok := cfg["flowcache"]; ok {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("router: classifier flowcache: %w", err)
			}
			if err := c.FlowCacheResize(v); err != nil {
				return nil, err
			}
		}
		return c, nil
	})
}
