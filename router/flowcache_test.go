package router

import (
	"fmt"
	"testing"
)

// clsRuleCount is enough rules to push the table past the compiler's
// linear cutoff, so the snapshot is cache-worthy.
const clsRuleCount = 8

// buildCachedClassifier wires a classifier with clsRuleCount udp/dst-port
// rules to outputs "a"/"b" plus a default sink, and returns the sinks.
func buildCachedClassifier(t *testing.T) (*Classifier, *sink, *sink, *sink) {
	t.Helper()
	c := newCap()
	cls, err := NewClassifier("a", "b", "default")
	if err != nil {
		t.Fatal(err)
	}
	sa, sb, sd := newSink(), newSink(), newSink()
	for name, comp := range map[string]*sink{"sa": sa, "sb": sb, "sd": sd} {
		if err := c.Insert(name, comp); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Insert("cls", cls); err != nil {
		t.Fatal(err)
	}
	for _, w := range [][2]string{{"a", "sa"}, {"b", "sb"}, {"default", "sd"}} {
		if _, err := ConnectPush(c, "cls", w[0], w[1]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < clsRuleCount; i++ {
		out := "a"
		if i%2 == 1 {
			out = "b"
		}
		if _, err := cls.RegisterFilter(fmt.Sprintf("udp and dst port %d", 1000+i), 1, out); err != nil {
			t.Fatal(err)
		}
	}
	return cls, sa, sb, sd
}

// TestFlowCacheHitPath: the second packet of a flow is served from the
// cache, routes identically, and the hit/miss counters tell the story.
func TestFlowCacheHitPath(t *testing.T) {
	cls, sa, _, sd := buildCachedClassifier(t)
	fc := cls.FlowCache()
	if fc == nil {
		t.Fatal("cache should be on by default")
	}
	for i := 0; i < 3; i++ {
		if err := cls.Push(udpPkt(t, 1000, 64)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ { // unmatched flow: default verdict caches too
		if err := cls.Push(udpPkt(t, 9999, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if len(sa.pkts) != 3 || len(sd.pkts) != 2 {
		t.Fatalf("routing diverged: a=%d default=%d", len(sa.pkts), len(sd.pkts))
	}
	hits, misses, _ := fc.Counters()
	if misses != 2 || hits != 3 {
		t.Fatalf("hits=%d misses=%d, want 3/2", hits, misses)
	}
	if fc.Len() != 2 {
		t.Fatalf("occupancy %d, want 2", fc.Len())
	}
}

// TestFlowCacheGenerationFence: a rule mutation must make every prior
// entry unservable — the very next packet of a cached flow reclassifies
// under the new rules and routes by them.
func TestFlowCacheGenerationFence(t *testing.T) {
	cls, sa, sb, _ := buildCachedClassifier(t)
	p := func() *Packet { return udpPkt(t, 1000, 64) }
	if err := cls.Push(p()); err != nil { // miss; caches verdict "a"
		t.Fatal(err)
	}
	if err := cls.Push(p()); err != nil { // hit
		t.Fatal(err)
	}
	// Shadow the flow's rule with a higher-priority route to "b".
	if _, err := cls.RegisterFilter("udp and dst port 1000", 0, "b"); err != nil {
		t.Fatal(err)
	}
	if err := cls.Push(p()); err != nil {
		t.Fatal(err)
	}
	if len(sa.pkts) != 2 || len(sb.pkts) != 1 {
		t.Fatalf("stale verdict served: a=%d b=%d, want 2/1", len(sa.pkts), len(sb.pkts))
	}
	hits, misses, _ := cls.FlowCache().Counters()
	if hits != 1 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 1/2 (post-swap probe must miss)", hits, misses)
	}
}

// TestFlowCacheDisabledForUnsafeRules: a ttl-comparing rule disables the
// cache (verdicts are not flow-pure), and lookups bypass it entirely.
func TestFlowCacheDisabledForUnsafeRules(t *testing.T) {
	cls, sa, _, _ := buildCachedClassifier(t)
	if _, err := cls.RegisterFilter("ttl < 10", 0, "a"); err != nil {
		t.Fatal(err)
	}
	for ttl := uint8(5); ttl <= 15; ttl += 10 { // same 5-tuple, different ttl
		if err := cls.Push(udpPkt(t, 1000, ttl)); err != nil {
			t.Fatal(err)
		}
	}
	// ttl=5 matches the ttl rule -> a; ttl=15 falls to the port rule -> a.
	if len(sa.pkts) != 2 {
		t.Fatalf("a=%d, want 2", len(sa.pkts))
	}
	hits, misses, _ := cls.FlowCache().Counters()
	if hits != 0 || misses != 0 {
		t.Fatalf("cache touched (%d/%d) despite unsafe rules", hits, misses)
	}
}

// TestFlowCacheResizeAndFlush: resize swaps the cache atomically (fresh
// counters, new capacity), 0 disables, and flush empties without
// disturbing capacity.
func TestFlowCacheResizeAndFlush(t *testing.T) {
	cls, _, _, _ := buildCachedClassifier(t)
	if err := cls.FlowCacheResize(128); err != nil {
		t.Fatal(err)
	}
	fc := cls.FlowCache()
	if fc.Cap() != 128 {
		t.Fatalf("cap %d, want 128", fc.Cap())
	}
	if err := cls.Push(udpPkt(t, 1000, 64)); err != nil {
		t.Fatal(err)
	}
	if fc.Len() != 1 {
		t.Fatalf("len %d, want 1", fc.Len())
	}
	cls.FlowCacheFlush()
	if fc.Len() != 0 {
		t.Fatalf("len %d after flush, want 0", fc.Len())
	}
	if err := cls.FlowCacheResize(0); err != nil {
		t.Fatal(err)
	}
	if cls.FlowCache() != nil {
		t.Fatal("resize(0) should disable the cache")
	}
	if err := cls.Push(udpPkt(t, 1000, 64)); err != nil { // still classifies
		t.Fatal(err)
	}
}

// TestFlowCacheEviction: a 1-set cache (flowWays entries) overflows by
// distinct flows; evictions are counted and occupancy stays bounded.
func TestFlowCacheEviction(t *testing.T) {
	fc := NewFlowCache(flowWays) // single set
	gen := uint64(1)
	for i := 0; i < flowWays*3; i++ {
		key := flowKey{srcPort: uint16(i), version: 4}
		fc.insert(0, key, gen, flowVerdict{out: "x", matched: true})
	}
	if fc.Len() != flowWays {
		t.Fatalf("occupancy %d, want %d", fc.Len(), flowWays)
	}
	_, _, evicts := fc.Counters()
	if evicts != uint64(flowWays*2) {
		t.Fatalf("evicts %d, want %d", evicts, flowWays*2)
	}
	// LRU: touch way for key 8..11 except 9; insert a new flow; 9 is gone.
	for i := flowWays * 2; i < flowWays*3; i++ {
		if i == flowWays*2+1 {
			continue
		}
		if _, ok := fc.probe(0, flowKey{srcPort: uint16(i), version: 4}, gen); !ok {
			t.Fatalf("flow %d should be resident", i)
		}
	}
	fc.insert(0, flowKey{srcPort: 999, version: 4}, gen, flowVerdict{})
	if _, ok := fc.probe(0, flowKey{srcPort: uint16(flowWays*2 + 1), version: 4}, gen); ok {
		t.Fatal("least-recently-used entry survived eviction")
	}
	if _, ok := fc.probe(0, flowKey{srcPort: 999, version: 4}, gen); !ok {
		t.Fatal("new entry missing")
	}
}

// TestFlowCacheStatsSurface: the classifier's Stats() carries the cache
// counters and gauges the adapt plane and nkctl read.
func TestFlowCacheStatsSurface(t *testing.T) {
	cls, _, _, _ := buildCachedClassifier(t)
	for i := 0; i < 4; i++ {
		if err := cls.Push(udpPkt(t, 1000, 64)); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]float64{}
	for _, s := range cls.Stats() {
		got[s.Name] = s.Value
	}
	for name, want := range map[string]float64{
		"flowcache_hits":     3,
		"flowcache_misses":   1,
		"flowcache_entries":  1,
		"flowcache_capacity": DefaultFlowCacheCap,
		"flowcache_hitrate":  0.75,
	} {
		if got[name] != want {
			t.Fatalf("%s = %v, want %v (all: %v)", name, got[name], want, got)
		}
	}
}

// TestFlowCacheVerdictTransparency: with and without the cache, a mixed
// packet sequence (repeats, misses, both outputs) routes identically —
// the single-classifier cousin of FuzzCacheTransparency.
func TestFlowCacheVerdictTransparency(t *testing.T) {
	ports := []uint16{1000, 1001, 1000, 9999, 1001, 1000, 9999, 1002, 1002, 1000}
	run := func(disable bool) ([]uint16, []uint16, []uint16) {
		cls, sa, sb, sd := buildCachedClassifier(t)
		if disable {
			if err := cls.FlowCacheResize(0); err != nil {
				t.Fatal(err)
			}
		}
		for _, port := range ports {
			if err := cls.Push(udpPkt(t, port, 64)); err != nil {
				t.Fatal(err)
			}
		}
		return dstPorts(sa.pkts), dstPorts(sb.pkts), dstPorts(sd.pkts)
	}
	ca, cb, cd := run(false)
	ua, ub, ud := run(true)
	if !equalPorts(ca, ua) || !equalPorts(cb, ub) || !equalPorts(cd, ud) {
		t.Fatalf("cached vs uncached diverged:\n a %v vs %v\n b %v vs %v\n d %v vs %v",
			ca, ua, cb, ub, cd, ud)
	}
}

// TestSnapshotLinearTableNotCached guards the engagement condition: a
// sub-cutoff table must not pay cache costs even with the cache enabled.
func TestSnapshotLinearTableNotCached(t *testing.T) {
	c := newCap()
	cls, err := NewClassifier("a", "default")
	if err != nil {
		t.Fatal(err)
	}
	sa := newSink()
	if err := c.Insert("cls", cls); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("sa", sa); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(c, "cls", "a", "sa"); err != nil {
		t.Fatal(err)
	}
	if _, err := cls.RegisterFilter("udp and dst port 1000", 1, "a"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := cls.Push(udpPkt(t, 1000, 64)); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, _ := cls.FlowCache().Counters()
	if hits != 0 || misses != 0 {
		t.Fatalf("tiny table used the cache (%d/%d)", hits, misses)
	}
	if len(sa.pkts) != 3 {
		t.Fatalf("a=%d, want 3", len(sa.pkts))
	}
}
