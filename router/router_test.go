package router

import (
	"errors"
	"net/netip"
	"sync"
	"testing"

	"netkit/core"
	"netkit/internal/buffers"
	"netkit/packet"
)

var (
	srcA = netip.MustParseAddr("10.0.0.1")
	dstA = netip.MustParseAddr("192.168.9.9")
	src6 = netip.MustParseAddr("2001:db8::1")
	dst6 = netip.MustParseAddr("2001:db8::9")
)

func udpPkt(t *testing.T, dstPort uint16, ttl uint8) *Packet {
	t.Helper()
	b, err := packet.BuildUDP4(srcA, dstA, 4000, dstPort, ttl, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	return NewPacket(b)
}

func udp6Pkt(t *testing.T, hop uint8) *Packet {
	t.Helper()
	b, err := packet.BuildUDP6(src6, dst6, 1, 2, hop, nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewPacket(b)
}

// sink collects packets for assertions.
type sink struct {
	*core.Base
	mu   sync.Mutex
	pkts []*Packet
}

func newSink() *sink {
	s := &sink{Base: core.NewBase("test.Sink")}
	s.Provide(IPacketPushID, s)
	return s
}

func (s *sink) Push(p *Packet) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pkts = append(s.pkts, p)
	return nil
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pkts)
}

func (s *sink) last() *Packet {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pkts) == 0 {
		return nil
	}
	return s.pkts[len(s.pkts)-1]
}

func newCap() *core.Capsule {
	return core.NewCapsule("router-test")
}

// ---- packet ---------------------------------------------------------------

func TestPacketViewCached(t *testing.T) {
	p := udpPkt(t, 53, 64)
	v1 := p.View()
	if v1.Version != 4 || v1.DstPort != 53 {
		t.Fatalf("view = %+v", v1)
	}
	v2 := p.View()
	if v1 != v2 {
		t.Fatal("view not cached")
	}
	p.InvalidateView()
	if p.View() == v1 && !p.viewOK {
		t.Fatal("invalidate did not reset")
	}
}

func TestPooledPacketRelease(t *testing.T) {
	pool := buffers.MustNewPool([]int{2048}, 4, 0)
	p, err := NewPooledPacket(pool, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 3 {
		t.Fatalf("data = %v", p.Data)
	}
	p.Release()
	if pool.Stats().Live != 0 {
		t.Fatal("buffer leaked")
	}
	p.Release() // idempotent, must not panic or double-free
	if pool.Stats().Live != 0 {
		t.Fatal("double release corrupted pool")
	}
}

// ---- simple elements ---------------------------------------------------------

func TestCounterForwards(t *testing.T) {
	c := newCap()
	cnt := NewCounter()
	s := newSink()
	if err := c.Insert("cnt", cnt); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("sink", s); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(c, "cnt", "out", "sink"); err != nil {
		t.Fatal(err)
	}
	p := udpPkt(t, 53, 64)
	if err := cnt.Push(p); err != nil {
		t.Fatal(err)
	}
	if s.count() != 1 {
		t.Fatal("not forwarded")
	}
	st := cnt.ElemStats()
	if st.In != 1 || st.Out != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if cnt.Bytes() != uint64(len(p.Data)) {
		t.Fatalf("bytes = %d", cnt.Bytes())
	}
}

func TestCounterUnboundDrops(t *testing.T) {
	cnt := NewCounter()
	if err := cnt.Push(udpPkt(t, 1, 64)); err != nil {
		t.Fatal(err)
	}
	if st := cnt.ElemStats(); st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDropperAbsorbs(t *testing.T) {
	d := NewDropper()
	pool := buffers.MustNewPool([]int{2048}, 4, 0)
	p, err := NewPooledPacket(pool, []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Push(p); err != nil {
		t.Fatal(err)
	}
	if pool.Stats().Live != 0 {
		t.Fatal("dropper leaked pooled buffer")
	}
	if st := d.ElemStats(); st.Dropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTeeDuplicates(t *testing.T) {
	c := newCap()
	tee, err := NewTee(2)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := newSink(), newSink()
	for name, comp := range map[string]core.Component{"tee": tee, "s1": s1, "s2": s2} {
		if err := c.Insert(name, comp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ConnectPush(c, "tee", "out0", "s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(c, "tee", "out1", "s2"); err != nil {
		t.Fatal(err)
	}
	if err := tee.Push(udpPkt(t, 1, 64)); err != nil {
		t.Fatal(err)
	}
	if s1.count() != 1 || s2.count() != 1 {
		t.Fatalf("tee fanout = %d/%d", s1.count(), s2.count())
	}
}

func TestTeeRefcountsPooledBuffers(t *testing.T) {
	c := newCap()
	tee, err := NewTee(2)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := NewDropper(), NewDropper()
	for name, comp := range map[string]core.Component{"tee": tee, "d1": d1, "d2": d2} {
		if err := c.Insert(name, comp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ConnectPush(c, "tee", "out0", "d1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(c, "tee", "out1", "d2"); err != nil {
		t.Fatal(err)
	}
	pool := buffers.MustNewPool([]int{2048}, 4, 0)
	p, err := NewPooledPacket(pool, []byte{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tee.Push(p); err != nil {
		t.Fatal(err)
	}
	if live := pool.Stats().Live; live != 0 {
		t.Fatalf("pooled buffer leaked across tee: live=%d", live)
	}
}

func TestTeeValidation(t *testing.T) {
	if _, err := NewTee(0); err == nil {
		t.Fatal("want error")
	}
}

// ---- header processors -----------------------------------------------------------

func TestProtoRecognDemux(t *testing.T) {
	c := newCap()
	r := NewProtoRecogn()
	s4, s6, so := newSink(), newSink(), newSink()
	for name, comp := range map[string]core.Component{"r": r, "s4": s4, "s6": s6, "so": so} {
		if err := c.Insert(name, comp); err != nil {
			t.Fatal(err)
		}
	}
	for recp, to := range map[string]string{"ipv4": "s4", "ipv6": "s6", "other": "so"} {
		if _, err := ConnectPush(c, "r", recp, to); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Push(udpPkt(t, 1, 64)); err != nil {
		t.Fatal(err)
	}
	if err := r.Push(udp6Pkt(t, 64)); err != nil {
		t.Fatal(err)
	}
	if err := r.Push(NewPacket([]byte{0xff, 0x00})); err != nil {
		t.Fatal(err)
	}
	if s4.count() != 1 || s6.count() != 1 || so.count() != 1 {
		t.Fatalf("demux = %d/%d/%d", s4.count(), s6.count(), so.count())
	}
}

func TestIPv4ProcDecrementsTTL(t *testing.T) {
	c := newCap()
	h := NewIPv4Proc(false)
	s := newSink()
	if err := c.Insert("h", h); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("s", s); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(c, "h", "out", "s"); err != nil {
		t.Fatal(err)
	}
	if err := h.Push(udpPkt(t, 1, 64)); err != nil {
		t.Fatal(err)
	}
	got := s.last()
	hdr, err := packet.ParseIPv4(got.Data)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.TTL != 63 {
		t.Fatalf("ttl = %d", hdr.TTL)
	}
	if err := packet.ValidateIPv4Checksum(got.Data); err != nil {
		t.Fatalf("checksum after decrement: %v", err)
	}
}

func TestIPv4ProcDropsExpired(t *testing.T) {
	c := newCap()
	h := NewIPv4Proc(false)
	s := newSink()
	if err := c.Insert("h", h); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("s", s); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(c, "h", "out", "s"); err != nil {
		t.Fatal(err)
	}
	if err := h.Push(udpPkt(t, 1, 1)); err != nil { // 1 -> 0: expires
		t.Fatal(err)
	}
	if s.count() != 0 {
		t.Fatal("expired packet forwarded")
	}
	if h.TTLDrops() != 1 {
		t.Fatalf("ttl drops = %d", h.TTLDrops())
	}
}

func TestIPv4ProcValidatesChecksum(t *testing.T) {
	c := newCap()
	h := NewIPv4Proc(true)
	s := newSink()
	if err := c.Insert("h", h); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("s", s); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(c, "h", "out", "s"); err != nil {
		t.Fatal(err)
	}
	p := udpPkt(t, 1, 64)
	p.Data[12] ^= 0xff // corrupt src addr
	if err := h.Push(p); err != nil {
		t.Fatal(err)
	}
	if s.count() != 0 || h.ChecksumDrops() != 1 {
		t.Fatalf("bad checksum passed: fwd=%d drops=%d", s.count(), h.ChecksumDrops())
	}
}

func TestIPv6ProcDecrementsHopLimit(t *testing.T) {
	c := newCap()
	h := NewIPv6Proc()
	s := newSink()
	if err := c.Insert("h", h); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("s", s); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(c, "h", "out", "s"); err != nil {
		t.Fatal(err)
	}
	if err := h.Push(udp6Pkt(t, 5)); err != nil {
		t.Fatal(err)
	}
	hdr, err := packet.ParseIPv6(s.last().Data)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.HopLimit != 4 {
		t.Fatalf("hop = %d", hdr.HopLimit)
	}
	if err := h.Push(udp6Pkt(t, 1)); err != nil {
		t.Fatal(err)
	}
	if h.HopDrops() != 1 {
		t.Fatalf("hop drops = %d", h.HopDrops())
	}
}

func TestChecksumValidator(t *testing.T) {
	c := newCap()
	v := NewChecksumValidator()
	s := newSink()
	if err := c.Insert("v", v); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("s", s); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(c, "v", "out", "s"); err != nil {
		t.Fatal(err)
	}
	if err := v.Push(udpPkt(t, 1, 64)); err != nil {
		t.Fatal(err)
	}
	bad := udpPkt(t, 1, 64)
	bad.Data[15] ^= 0x55
	if err := v.Push(bad); err != nil {
		t.Fatal(err)
	}
	// IPv6 passes through (no header checksum).
	if err := v.Push(udp6Pkt(t, 9)); err != nil {
		t.Fatal(err)
	}
	if s.count() != 2 {
		t.Fatalf("forwarded = %d, want 2", s.count())
	}
	if v.ElemStats().Dropped != 1 {
		t.Fatalf("dropped = %d", v.ElemStats().Dropped)
	}
}

// ---- classifier ------------------------------------------------------------------

func TestClassifierRoutesBySpec(t *testing.T) {
	c := newCap()
	cls, err := NewClassifier("dns", "web", "default")
	if err != nil {
		t.Fatal(err)
	}
	sd, sw, sdef := newSink(), newSink(), newSink()
	for name, comp := range map[string]core.Component{"cls": cls, "sd": sd, "sw": sw, "sdef": sdef} {
		if err := c.Insert(name, comp); err != nil {
			t.Fatal(err)
		}
	}
	for recp, to := range map[string]string{"dns": "sd", "web": "sw", "default": "sdef"} {
		if _, err := ConnectPush(c, "cls", recp, to); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cls.RegisterFilter("udp and dst port 53", 10, "dns"); err != nil {
		t.Fatal(err)
	}
	if _, err := cls.RegisterFilter("tcp and dst port 80", 10, "web"); err != nil {
		t.Fatal(err)
	}

	if err := cls.Push(udpPkt(t, 53, 64)); err != nil {
		t.Fatal(err)
	}
	if err := cls.Push(udpPkt(t, 9999, 64)); err != nil {
		t.Fatal(err)
	}
	web, err := packet.BuildTCP4(srcA, dstA, 5000, 80, 64, packet.TCPSyn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cls.Push(NewPacket(web)); err != nil {
		t.Fatal(err)
	}
	if sd.count() != 1 || sw.count() != 1 || sdef.count() != 1 {
		t.Fatalf("routing = dns:%d web:%d def:%d", sd.count(), sw.count(), sdef.count())
	}
}

func TestClassifierUnmatchedWithoutDefaultDrops(t *testing.T) {
	cls, err := NewClassifier("only")
	if err != nil {
		t.Fatal(err)
	}
	if err := cls.Push(udpPkt(t, 1, 64)); err != nil {
		t.Fatal(err)
	}
	if cls.ElemStats().Dropped != 1 {
		t.Fatalf("dropped = %d", cls.ElemStats().Dropped)
	}
}

func TestClassifierRegisterToUnknownOutput(t *testing.T) {
	cls, err := NewClassifier("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cls.RegisterFilter("udp", 1, "ghost"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestClassifierUnregister(t *testing.T) {
	c := newCap()
	cls, err := NewClassifier("a", "default")
	if err != nil {
		t.Fatal(err)
	}
	sa, sdef := newSink(), newSink()
	for name, comp := range map[string]core.Component{"cls": cls, "sa": sa, "sdef": sdef} {
		if err := c.Insert(name, comp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ConnectPush(c, "cls", "a", "sa"); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(c, "cls", "default", "sdef"); err != nil {
		t.Fatal(err)
	}
	id, err := cls.RegisterFilter("udp", 1, "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := cls.Push(udpPkt(t, 1, 64)); err != nil {
		t.Fatal(err)
	}
	if err := cls.UnregisterFilter(id); err != nil {
		t.Fatal(err)
	}
	if err := cls.Push(udpPkt(t, 1, 64)); err != nil {
		t.Fatal(err)
	}
	if sa.count() != 1 || sdef.count() != 1 {
		t.Fatalf("a=%d def=%d", sa.count(), sdef.count())
	}
}

func TestClassifierDynamicOutputs(t *testing.T) {
	cls, err := NewClassifier("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := cls.AddOutput("b"); err != nil {
		t.Fatal(err)
	}
	if err := cls.AddOutput("b"); !errors.Is(err, core.ErrAlreadyExists) {
		t.Fatalf("want ErrAlreadyExists, got %v", err)
	}
	if len(cls.FilterOutputs()) != 2 {
		t.Fatalf("outputs = %v", cls.FilterOutputs())
	}
	if err := cls.RemoveOutput("b"); err != nil {
		t.Fatal(err)
	}
	if err := cls.RemoveOutput("ghost"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

// ---- queues ---------------------------------------------------------------------

func TestFIFOQueuePushPull(t *testing.T) {
	q, err := NewFIFOQueue(2)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2, p3 := udpPkt(t, 1, 64), udpPkt(t, 2, 64), udpPkt(t, 3, 64)
	for _, p := range []*Packet{p1, p2, p3} {
		if err := q.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 2 || q.ElemStats().Dropped != 1 {
		t.Fatalf("len=%d dropped=%d", q.Len(), q.ElemStats().Dropped)
	}
	got, err := q.Pull()
	if err != nil || got != p1 {
		t.Fatalf("pull order broken: %v %v", got, err)
	}
	if got, _ := q.Pull(); got != p2 {
		t.Fatal("pull order broken 2")
	}
	if _, err := q.Pull(); !errors.Is(err, ErrNoPacket) {
		t.Fatalf("want ErrNoPacket, got %v", err)
	}
	if q.Capacity() != 2 {
		t.Fatalf("cap = %d", q.Capacity())
	}
}

func TestFIFOQueueValidation(t *testing.T) {
	if _, err := NewFIFOQueue(0); err == nil {
		t.Fatal("want error")
	}
}

func TestREDQueueForcedDrops(t *testing.T) {
	q, err := NewREDQueue(REDConfig{
		Capacity: 16, MinTh: 4, MaxTh: 8, MaxP: 0.5, Weight: 1, // weight 1: avg == instantaneous
		Rand: func() float64 { return 1.0 }, // never early-drop
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := q.Push(udpPkt(t, 1, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if q.ForcedDrops() == 0 {
		t.Fatal("no forced drops despite avg >= maxTh")
	}
	if q.Len() >= 16 {
		t.Fatalf("queue overfilled: %d", q.Len())
	}
}

func TestREDQueueEarlyDrops(t *testing.T) {
	q, err := NewREDQueue(REDConfig{
		Capacity: 64, MinTh: 2, MaxTh: 60, MaxP: 1.0, Weight: 1,
		Rand: func() float64 { return 0.0 }, // always early-drop once avg > minTh
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := q.Push(udpPkt(t, 1, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if q.EarlyDrops() == 0 {
		t.Fatal("no early drops despite rand=0")
	}
}

func TestREDQueueValidation(t *testing.T) {
	bad := []REDConfig{
		{Capacity: 0, MinTh: 1, MaxTh: 2, MaxP: 0.5},
		{Capacity: 10, MinTh: 0, MaxTh: 5, MaxP: 0.5},
		{Capacity: 10, MinTh: 5, MaxTh: 4, MaxP: 0.5},
		{Capacity: 10, MinTh: 2, MaxTh: 20, MaxP: 0.5},
		{Capacity: 10, MinTh: 2, MaxTh: 8, MaxP: 0},
		{Capacity: 10, MinTh: 2, MaxTh: 8, MaxP: 1.5},
	}
	for i, cfg := range bad {
		if _, err := NewREDQueue(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestREDQueuePullOrder(t *testing.T) {
	q, err := NewREDQueue(REDConfig{Capacity: 8, MinTh: 6, MaxTh: 7, MaxP: 0.1,
		Rand: func() float64 { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := udpPkt(t, 1, 64), udpPkt(t, 2, 64)
	if err := q.Push(p1); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(p2); err != nil {
		t.Fatal(err)
	}
	if got, _ := q.Pull(); got != p1 {
		t.Fatal("order")
	}
	if got, _ := q.Pull(); got != p2 {
		t.Fatal("order2")
	}
	if _, err := q.Pull(); !errors.Is(err, ErrNoPacket) {
		t.Fatal("empty")
	}
}
