package router

import (
	"context"
	"errors"
	"testing"
	"time"

	"netkit/cf"
	"netkit/core"
	"netkit/internal/buffers"
	"netkit/internal/osabs"
	"netkit/packet"
)

// bare is a component with no packet interfaces at all.
type bare struct{ *core.Base }

func newBare() *bare { return &bare{Base: core.NewBase("test.Bare")} }

// fakeClassifier provides IClassifier but no packet receptacles: violates
// the classifier-outputs rule.
type fakeClassifier struct{ *core.Base }

func newFakeClassifier() *fakeClassifier {
	f := &fakeClassifier{Base: core.NewBase("test.FakeClassifier")}
	f.Provide(IClassifierID, f)
	f.Provide(IPacketPushID, f)
	return f
}

func (f *fakeClassifier) Push(*Packet) error { return nil }
func (f *fakeClassifier) RegisterFilter(string, int, string) (uint64, error) {
	return 0, nil
}
func (f *fakeClassifier) UnregisterFilter(uint64) error { return nil }
func (f *fakeClassifier) FilterOutputs() []string       { return nil }

func TestRulePacketInterfaces(t *testing.T) {
	c := newCap()
	fw, err := NewFramework(c, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Admit("counter", NewCounter()); err != nil {
		t.Fatalf("counter should be compliant: %v", err)
	}
	if err := fw.Admit("bare", newBare()); !errors.Is(err, cf.ErrRuleViolated) {
		t.Fatalf("want rule violation, got %v", err)
	}
	// A source with only receptacles (no provided packet iface) complies.
	nic, err := osabs.NewNIC("eth-t", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewNICSource(nic, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Admit("src", src); err != nil {
		t.Fatalf("source should be compliant: %v", err)
	}
}

func TestRuleClassifierOutputs(t *testing.T) {
	c := newCap()
	fw, err := NewFramework(c, false)
	if err != nil {
		t.Fatal(err)
	}
	cls, err := NewClassifier("a", "default")
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Admit("cls", cls); err != nil {
		t.Fatalf("real classifier compliant: %v", err)
	}
	if err := fw.Admit("fake", newFakeClassifier()); !errors.Is(err, cf.ErrRuleViolated) {
		t.Fatalf("want rule violation for classifier without outputs, got %v", err)
	}
}

func TestRuleTrustIsolation(t *testing.T) {
	c := newCap()
	fw, err := NewFramework(c, true) // strict
	if err != nil {
		t.Fatal(err)
	}
	cnt := NewCounter()
	cnt.SetAnnotation(core.AnnotTrust, "untrusted")
	if err := fw.Admit("u", cnt); !errors.Is(err, cf.ErrRuleViolated) {
		t.Fatalf("want rejection of in-proc untrusted, got %v", err)
	}
	// Marked as remotely hosted, it passes.
	cnt2 := NewCounter()
	cnt2.SetAnnotation(core.AnnotTrust, "untrusted")
	cnt2.SetAnnotation("netkit.remote", "true")
	if err := fw.Admit("u2", cnt2); err != nil {
		t.Fatal(err)
	}
	// Non-strict framework admits in-proc untrusted components.
	fw2, err := NewFramework(core.NewCapsule("lenient"), false)
	if err != nil {
		t.Fatal(err)
	}
	cnt3 := NewCounter()
	cnt3.SetAnnotation(core.AnnotTrust, "untrusted")
	if err := fw2.Admit("u3", cnt3); err != nil {
		t.Fatal(err)
	}
}

func TestFigure3CompositeForwards(t *testing.T) {
	outer := newCap()
	comp, err := NewFigure3Composite(outer, Figure3Config{})
	if err != nil {
		t.Fatal(err)
	}
	fw, err := NewFramework(outer, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Admit("gw", comp); err != nil {
		t.Fatalf("figure-3 composite should satisfy the CF rules: %v", err)
	}
	out := newSink()
	if err := outer.Insert("collect", out); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(outer, "gw", "out", "collect"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := outer.StartAll(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := outer.StopAll(ctx); err != nil {
			t.Errorf("stop: %v", err)
		}
	}()

	ingress, _ := comp.Provided(IPacketPushID)
	push := ingress.(IPacketPush)
	const n = 50
	for i := 0; i < n; i++ {
		if err := push.Push(udpPkt(t, 53, 64)); err != nil {
			t.Fatal(err)
		}
		if err := push.Push(udp6Pkt(t, 32)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(2 * time.Second)
	for out.count() < 2*n {
		select {
		case <-deadline:
			t.Fatalf("composite forwarded %d of %d", out.count(), 2*n)
		case <-time.After(time.Millisecond):
		}
	}
	// TTL/hop decremented on the way through.
	v4seen, v6seen := false, false
	out.mu.Lock()
	defer out.mu.Unlock()
	for _, p := range out.pkts {
		switch packet.Version(p.Data) {
		case 4:
			h, err := packet.ParseIPv4(p.Data)
			if err != nil {
				t.Fatal(err)
			}
			if h.TTL != 63 {
				t.Fatalf("v4 ttl = %d", h.TTL)
			}
			v4seen = true
		case 6:
			h, err := packet.ParseIPv6(p.Data)
			if err != nil {
				t.Fatal(err)
			}
			if h.HopLimit != 31 {
				t.Fatalf("v6 hop = %d", h.HopLimit)
			}
			v6seen = true
		}
	}
	if !v4seen || !v6seen {
		t.Fatal("missing version in output")
	}
}

func TestFigure3ConstraintVetoesForeignSchedBinding(t *testing.T) {
	outer := newCap()
	comp, err := NewFigure3Composite(outer, Figure3Config{})
	if err != nil {
		t.Fatal(err)
	}
	inner := comp.Inner()
	rogue := newSink()
	if err := inner.Insert("rogue", rogue); err != nil {
		t.Fatal(err)
	}
	// Unbind sched.out and try to redirect it to the rogue sink: the
	// controller's constraint must veto.
	var schedOut core.BindingID
	for _, b := range inner.BindingsOf("sched") {
		from, recp := b.From()
		if from == "sched" && recp == "out" {
			schedOut = b.ID()
		}
	}
	if err := inner.Unbind(schedOut); err != nil {
		t.Fatal(err)
	}
	_, err = inner.Bind("sched", "out", "rogue", IPacketPushID)
	if !errors.Is(err, core.ErrVetoed) {
		t.Fatalf("want ErrVetoed, got %v", err)
	}
	// Restoring the sanctioned wiring succeeds.
	if _, err := inner.Bind("sched", "out", "egress", IPacketPushID); err != nil {
		t.Fatal(err)
	}
}

func TestHotSwapLossless(t *testing.T) {
	c := newCap()
	head := NewCounter()
	mid := NewCounter()
	tail := newSink()
	for name, comp := range map[string]core.Component{"head": head, "mid": mid, "tail": tail} {
		if err := c.Insert(name, comp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ConnectPush(c, "head", "out", "mid"); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(c, "mid", "out", "tail"); err != nil {
		t.Fatal(err)
	}

	// Drive traffic concurrently with the swap.
	done := make(chan int)
	go func() {
		sent := 0
		for i := 0; i < 5000; i++ {
			if err := head.Push(udpPkt(t, 1, 64)); err == nil {
				sent++
			}
		}
		done <- sent
	}()

	replacement := NewCounter()
	if err := HotSwap(c, "mid", "mid2", replacement); err != nil {
		t.Fatalf("hotswap: %v", err)
	}
	sent := <-done

	if got := tail.count(); got != sent {
		t.Fatalf("lost packets across hot-swap: sent %d, received %d", sent, got)
	}
	if _, ok := c.Component("mid"); ok {
		t.Fatal("old component still present")
	}
	if _, ok := c.Component("mid2"); !ok {
		t.Fatal("replacement missing")
	}
	// The replacement carries (most of) the traffic that flowed after the swap.
	if replacement.ElemStats().In == 0 && mid.ElemStats().In == 0 {
		t.Fatal("no traffic accounted anywhere")
	}
	if err := c.Snapshot().Validate(); err != nil {
		t.Fatalf("architecture invalid after swap: %v", err)
	}
}

func TestHotSwapMigratesQueueState(t *testing.T) {
	c := newCap()
	q1, err := NewFIFOQueue(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("q", q1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := q1.Push(udpPkt(t, uint16(i+1), 64)); err != nil {
			t.Fatal(err)
		}
	}
	q2, err := NewFIFOQueue(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := HotSwap(c, "q", "q2", q2); err != nil {
		t.Fatal(err)
	}
	if q2.Len() != 10 {
		t.Fatalf("migrated %d of 10 packets", q2.Len())
	}
	// FIFO order preserved.
	p, err := q2.Pull()
	if err != nil {
		t.Fatal(err)
	}
	if p.View().DstPort != 1 {
		t.Fatalf("order broken: first dst port = %d", p.View().DstPort)
	}
}

func TestHotSwapMissingReceptacleFails(t *testing.T) {
	c := newCap()
	mid := NewCounter()
	tail := newSink()
	if err := c.Insert("mid", mid); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("tail", tail); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(c, "mid", "out", "tail"); err != nil {
		t.Fatal(err)
	}
	// A dropper has no "out" receptacle: rewiring must fail cleanly.
	if err := HotSwap(c, "mid", "d", NewDropper()); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestHotSwapUnknownOld(t *testing.T) {
	c := newCap()
	if err := HotSwap(c, "ghost", "x", NewCounter()); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestGatePausesTraffic(t *testing.T) {
	c := newCap()
	head := NewCounter()
	tail := newSink()
	if err := c.Insert("head", head); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("tail", tail); err != nil {
		t.Fatal(err)
	}
	b, err := ConnectPush(c, "head", "out", "tail")
	if err != nil {
		t.Fatal(err)
	}
	var gate Gate
	if err := b.AddInterceptor(gate.Interceptor("gate")); err != nil {
		t.Fatal(err)
	}
	gate.Pause()
	delivered := make(chan struct{})
	go func() {
		_ = head.Push(udpPkt(t, 1, 64))
		close(delivered)
	}()
	select {
	case <-delivered:
		t.Fatal("push completed through paused gate")
	case <-time.After(20 * time.Millisecond):
	}
	gate.Resume()
	select {
	case <-delivered:
	case <-time.After(time.Second):
		t.Fatal("push never completed after resume")
	}
	if tail.count() != 1 {
		t.Fatalf("delivered = %d", tail.count())
	}
}

// ---- NIC wrappers and shaper ------------------------------------------------

func TestNICSourceToSinkPipeline(t *testing.T) {
	c := newCap()
	inNIC, err := osabs.NewNIC("in0", 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	outNIC, err := osabs.NewNIC("out0", 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewNICSource(inNIC, nil)
	if err != nil {
		t.Fatal(err)
	}
	snk, err := NewNICSink(outNIC)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("src", src); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("snk", snk); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(c, "src", "out", "snk"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.StartAll(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.StopAll(ctx) }()

	frame, err := packet.BuildUDP4(srcA, dstA, 1, 2, 64, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := inNIC.Inject(frame); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	deadline := time.After(2 * time.Second)
	for got < n {
		if _, err := outNIC.DrainTx(); err == nil {
			got++
			continue
		}
		select {
		case <-deadline:
			t.Fatalf("forwarded %d of %d", got, n)
		case <-time.After(time.Millisecond):
		}
	}
	if src.ElemStats().In != n || snk.ElemStats().Out != uint64(n) {
		t.Fatalf("src=%+v snk=%+v", src.Stats(), snk.Stats())
	}
}

func TestNICSourcePooledBuffers(t *testing.T) {
	pool := buffers.MustNewPool([]int{2048}, 8, 0)
	nic, err := osabs.NewNIC("in1", 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewNICSource(nic, pool)
	if err != nil {
		t.Fatal(err)
	}
	c := newCap()
	d := NewDropper()
	if err := c.Insert("src", src); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("d", d); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(c, "src", "out", "d"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.StartAll(ctx); err != nil {
		t.Fatal(err)
	}
	if err := nic.Inject([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(time.Second)
	for d.ElemStats().Dropped < 1 {
		select {
		case <-deadline:
			t.Fatal("packet never delivered")
		case <-time.After(time.Millisecond):
		}
	}
	if err := c.StopAll(ctx); err != nil {
		t.Fatal(err)
	}
	if pool.Stats().Live != 0 {
		t.Fatalf("pooled buffer leaked: %d", pool.Stats().Live)
	}
}

func TestKernelSourceBatches(t *testing.T) {
	ch, err := osabs.NewKernelChannel(64)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := NewKernelSource(ch, 8)
	if err != nil {
		t.Fatal(err)
	}
	c := newCap()
	out := newSink()
	if err := c.Insert("ks", ks); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("out", out); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(c, "ks", "out", "out"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.StartAll(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.StopAll(ctx) }()
	for i := 0; i < 30; i++ {
		if err := ch.Put([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(2 * time.Second)
	for out.count() < 30 {
		select {
		case <-deadline:
			t.Fatalf("delivered %d of 30", out.count())
		case <-time.After(time.Millisecond):
		}
	}
}

func TestKernelSourceValidation(t *testing.T) {
	if _, err := NewKernelSource(nil, 8); err == nil {
		t.Fatal("want error")
	}
	if _, err := NewNICSource(nil, nil); err == nil {
		t.Fatal("want error")
	}
	if _, err := NewNICSink(nil); err == nil {
		t.Fatal("want error")
	}
}

func TestTokenShaperPolices(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	sh, err := NewTokenShaper(1000, 100, clock)
	if err != nil {
		t.Fatal(err)
	}
	c := newCap()
	out := newSink()
	if err := c.Insert("sh", sh); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("out", out); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(c, "sh", "out", "out"); err != nil {
		t.Fatal(err)
	}
	small, err := packet.BuildUDP4(srcA, dstA, 1, 2, 64, make([]byte, 22)) // 50B IP
	if err != nil {
		t.Fatal(err)
	}
	// Burst of 100 bytes: two 50-byte packets conform, the third drops.
	for i := 0; i < 3; i++ {
		if err := sh.Push(NewPacket(append([]byte(nil), small...))); err != nil {
			t.Fatal(err)
		}
	}
	if out.count() != 2 || sh.ElemStats().Dropped != 1 {
		t.Fatalf("conformed=%d dropped=%d", out.count(), sh.ElemStats().Dropped)
	}
	now = now.Add(time.Second) // refill
	if err := sh.Push(NewPacket(append([]byte(nil), small...))); err != nil {
		t.Fatal(err)
	}
	if out.count() != 3 {
		t.Fatalf("after refill = %d", out.count())
	}
	allowed, denied := sh.BucketStats()
	if allowed != 3 || denied != 1 {
		t.Fatalf("bucket stats = %d/%d", allowed, denied)
	}
}

func TestShaperValidation(t *testing.T) {
	if _, err := NewTokenShaper(0, 1, nil); err == nil {
		t.Fatal("want error")
	}
}

// ---- interception on the packet path ------------------------------------------

func TestPacketPathInterception(t *testing.T) {
	c := newCap()
	head := NewCounter()
	tail := newSink()
	if err := c.Insert("head", head); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("tail", tail); err != nil {
		t.Fatal(err)
	}
	b, err := ConnectPush(c, "head", "out", "tail")
	if err != nil {
		t.Fatal(err)
	}
	var seen int
	if err := b.AddInterceptor(core.Interceptor{
		Name: "audit",
		Wrap: core.PrePost(func(op string, args []any) {
			if op == "Push" {
				seen++
			}
		}, nil),
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := head.Push(udpPkt(t, 1, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if seen != 5 || tail.count() != 5 {
		t.Fatalf("seen=%d delivered=%d", seen, tail.count())
	}
	if err := b.RemoveInterceptor("audit"); err != nil {
		t.Fatal(err)
	}
	if err := head.Push(udpPkt(t, 1, 64)); err != nil {
		t.Fatal(err)
	}
	if seen != 5 {
		t.Fatal("interceptor fired after removal")
	}
}

// ---- factory registrations ------------------------------------------------------

func TestFactoriesConstructAllTypes(t *testing.T) {
	types := []string{
		TypeCounter, TypeDropper, TypeTee, TypeProtoRecogn, TypeIPv4Proc,
		TypeIPv6Proc, TypeChecksumVal, TypeClassifier, TypeFIFOQueue,
		TypeREDQueue, TypeLinkSched, TypeTokenShaper, TypeNICSource, TypeNICSink,
	}
	for _, typ := range types {
		comp, err := core.Components.New(typ, nil)
		if err != nil {
			t.Errorf("factory %q: %v", typ, err)
			continue
		}
		if comp.TypeName() != typ {
			t.Errorf("factory %q produced type %q", typ, comp.TypeName())
		}
	}
}

func TestFactoryConfigParsing(t *testing.T) {
	q, err := core.Components.New(TypeFIFOQueue, map[string]string{"capacity": "7"})
	if err != nil {
		t.Fatal(err)
	}
	if q.(*FIFOQueue).Capacity() != 7 {
		t.Fatal("capacity config ignored")
	}
	if _, err := core.Components.New(TypeFIFOQueue, map[string]string{"capacity": "x"}); err == nil {
		t.Fatal("want parse error")
	}
	cls, err := core.Components.New(TypeClassifier, map[string]string{"outputs": "3"})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cls.(*Classifier).FilterOutputs()); got != 4 { // 3 + default
		t.Fatalf("outputs = %d", got)
	}
	sched, err := core.Components.New(TypeLinkSched, map[string]string{"policy": "rr", "inputs": "3"})
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.(*LinkScheduler).Policy(); got != PolicyRR {
		t.Fatalf("policy = %q", got)
	}
	if _, err := core.Components.New(TypeLinkSched, map[string]string{"policy": "nope"}); err == nil {
		t.Fatal("want policy error")
	}
}
