// Package router implements the paper's stratum-2 Router CF (called the
// Gateway CF in Figures 2 and 3): a component framework that accepts, as
// plug-ins, components performing arbitrary user-defined packet-forwarding
// functions, subject to run-time-checked rules. It also supplies the
// "standard" components the paper mentions — NIC wrappers, kernel-channel
// wrappers, classifiers, protocol recognisers, IPv4/IPv6 header
// processors, queues, link schedulers, shapers and counters.
//
// # The batched fast path
//
// Alongside the per-packet IPacketPush contract, components may implement
// IPacketPushBatch to amortise the cross-component indirect call over a
// whole []*Packet batch (DESIGN.md §4). Adoption is incremental: callers
// hand batches to ForwardBatch, which takes the batch path when the
// downstream supports it and degrades to per-packet Push otherwise, so
// batch-aware and per-packet components compose freely on one pipeline.
//
// Ownership on the batch path follows two rules:
//
//   - Packets: a PushBatch callee takes ownership of every packet in the
//     batch, exactly as Push does for one packet — it forwards, queues, or
//     releases each of them.
//   - Slices: the batch slice (and any sub-slice of it) belongs to the
//     caller. A callee must not retain it after returning; components that
//     buffer packets across calls (queues) copy the pointers out. This
//     lets callers recycle batches through GetBatch/PutBatch, keeping the
//     steady state allocation-free. The same rule applies one stratum
//     down to the [][]byte frame batches recycled by internal/buffers.
//
// Interception composes with batching: an interceptor chain on a binding
// wraps a PushBatch crossing once (op "PushBatch", args [batch]), not once
// per packet — see PacketCount for audit-style per-packet accounting.
package router

import (
	"errors"
	"time"

	"netkit/core"
	"netkit/internal/buffers"
	"netkit/internal/filter"
)

// Sentinel errors.
var (
	// ErrNoPacket indicates an empty pull source.
	ErrNoPacket = errors.New("router: no packet")
	// ErrQueueFull indicates a refused enqueue (drop-tail).
	ErrQueueFull = errors.New("router: queue full")
	// ErrStopped indicates a component used outside started state.
	ErrStopped = errors.New("router: component stopped")
)

// Packet is the unit travelling the data path. Data aliases the live
// bytes; when Buf is non-nil the packet owns a pooled buffer that must be
// released by whichever component terminates the packet's life (sink,
// dropper, or queue overflow path). The filter view is extracted lazily
// and cached so a chain of classifiers parses headers once.
type Packet struct {
	Data   []byte
	Buf    *buffers.Buffer
	InPort string

	// Born is the packet's ingress timestamp on the Nanotime clock, or 0
	// when unstamped. Load drivers and latency-aware ingress points stamp
	// it once; latency sinks (shard egress histograms, the nkload Sink)
	// record Nanotime()-Born. It rides Clone like the rest of the header.
	Born int64

	view   filter.View
	viewOK bool
}

// NewPacket wraps raw bytes (caller-owned).
func NewPacket(data []byte) *Packet { return &Packet{Data: data} }

// nanotimeEpoch anchors the process-local monotonic clock.
var nanotimeEpoch = time.Now()

// Nanotime returns monotonic nanoseconds since process start: the
// timestamp base for Packet.Born and for the latency histograms. Reading
// the monotonic clock is a few tens of nanoseconds — cheap enough to
// stamp per packet on latency-instrumented paths, and batched recorders
// read it once per batch.
func Nanotime() int64 { return int64(time.Since(nanotimeEpoch)) }

// StatLatency is the uniform name of the latency histogram stat (unit
// "ns"): the shard-lane residence histograms, the nkload Sink, and the
// adapt SLO conditions (P99Above) all key on it.
const StatLatency = "latency"

// NewPooledPacket copies data into a buffer drawn from pool.
func NewPooledPacket(pool *buffers.Pool, data []byte) (*Packet, error) {
	b, err := pool.Get(len(data))
	if err != nil {
		return nil, err
	}
	b.CopyFrom(data)
	return &Packet{Data: b.Bytes(), Buf: b}, nil
}

// View returns the cached filter view, extracting it on first use.
func (p *Packet) View() *filter.View {
	if !p.viewOK {
		p.view = filter.Extract(p.Data)
		p.viewOK = true
	}
	return &p.view
}

// InvalidateView discards the cached view after the packet bytes are
// mutated (e.g. TTL decrement changes nothing the view caches, but NAT
// would).
func (p *Packet) InvalidateView() { p.viewOK = false }

// Release returns the packet's pooled buffer, if any. Safe on
// caller-owned packets (no-op).
func (p *Packet) Release() {
	if p.Buf != nil {
		_ = p.Buf.Release()
		p.Buf = nil
	}
}

// Clone returns a new Packet sharing the same bytes (and retaining the
// pooled buffer, when present) so that independent consumers — e.g. the
// outputs of a Tee — each own a releasable reference.
func (p *Packet) Clone() *Packet {
	if p.Buf != nil {
		p.Buf.Retain()
	}
	cl := *p
	return &cl
}

// Interface identities of the Router CF (Figure 2).
const (
	// IPacketPushID identifies the push-oriented packet interface.
	IPacketPushID core.InterfaceID = "netkit.IPacketPush/1"
	// IPacketPullID identifies the pull-oriented packet interface.
	IPacketPullID core.InterfaceID = "netkit.IPacketPull/1"
	// IClassifierID identifies the optional classification interface.
	IClassifierID core.InterfaceID = "netkit.IClassifier/1"
)

// IPacketPush is the push-oriented inter-component packet interface: the
// callee takes ownership of the packet (forwarding it onward, queueing it,
// or releasing it).
type IPacketPush interface {
	Push(p *Packet) error
}

// IPacketPull is the pull-oriented interface: the caller obtains the next
// packet from an upstream element, or ErrNoPacket.
type IPacketPull interface {
	Pull() (*Packet, error)
}

// IClassifier is the optional filter-management interface (§5):
// register_filter installs a packet-filter specification routed to a named
// outgoing interface, whose semantics the component must honour.
type IClassifier interface {
	RegisterFilter(spec string, priority int, output string) (uint64, error)
	UnregisterFilter(id uint64) error
	FilterOutputs() []string
}

// ---------------------------------------------------------------------------
// Interface meta-model descriptors (with interception proxies)

type pushProxy struct {
	target IPacketPush
	around core.Around
}

func (p *pushProxy) Push(pkt *Packet) error {
	out := p.around("Push", []any{pkt}, func(args []any) []any {
		return []any{p.target.Push(args[0].(*Packet))}
	})
	if out[0] == nil {
		return nil
	}
	return out[0].(error)
}

// PushBatch keeps the batch path alive across an intercepted binding: the
// whole batch crosses the chain as ONE "PushBatch" operation (args[0] is
// the []*Packet), so interceptors pay per batch, not per packet. When the
// proxied target has no batch path the proxy degrades to per-packet "Push"
// operations, so every packet is observed by the chain exactly once either
// way.
func (p *pushProxy) PushBatch(batch []*Packet) error {
	bt, ok := p.target.(IPacketPushBatch)
	if !ok {
		failed := 0
		var firstErr error
		for _, pkt := range batch {
			if err := p.Push(pkt); err != nil {
				failed++
				if firstErr == nil {
					firstErr = err
				}
			}
		}
		if failed == 0 {
			return nil
		}
		return &BatchError{Failed: failed, Err: firstErr}
	}
	out := p.around("PushBatch", []any{batch}, func(args []any) []any {
		return []any{bt.PushBatch(args[0].([]*Packet))}
	})
	if out[0] == nil {
		return nil
	}
	return out[0].(error)
}

var _ IPacketPushBatch = (*pushProxy)(nil)

type pullProxy struct {
	target IPacketPull
	around core.Around
}

func (p *pullProxy) Pull() (*Packet, error) {
	out := p.around("Pull", nil, func([]any) []any {
		pkt, err := p.target.Pull()
		return []any{pkt, err}
	})
	var pkt *Packet
	if out[0] != nil {
		pkt = out[0].(*Packet)
	}
	var err error
	if out[1] != nil {
		err = out[1].(error)
	}
	return pkt, err
}

type classifierProxy struct {
	target IClassifier
	around core.Around
}

func (p *classifierProxy) RegisterFilter(spec string, priority int, output string) (uint64, error) {
	out := p.around("RegisterFilter", []any{spec, priority, output}, func(args []any) []any {
		id, err := p.target.RegisterFilter(args[0].(string), args[1].(int), args[2].(string))
		return []any{id, err}
	})
	var err error
	if out[1] != nil {
		err = out[1].(error)
	}
	return out[0].(uint64), err
}

func (p *classifierProxy) UnregisterFilter(id uint64) error {
	out := p.around("UnregisterFilter", []any{id}, func(args []any) []any {
		return []any{p.target.UnregisterFilter(args[0].(uint64))}
	})
	if out[0] == nil {
		return nil
	}
	return out[0].(error)
}

func (p *classifierProxy) FilterOutputs() []string {
	out := p.around("FilterOutputs", nil, func([]any) []any {
		return []any{p.target.FilterOutputs()}
	})
	if out[0] == nil {
		return nil
	}
	return out[0].([]string)
}

func init() {
	core.Interfaces.MustRegister(&core.Descriptor{
		ID:  IPacketPushID,
		Doc: "push-oriented packet hand-off; callee takes ownership",
		Ops: []core.OpDesc{{Name: "Push", NumIn: 1, NumOut: 1, Doc: "deliver one packet"}},
		Check: func(v any) bool {
			_, ok := v.(IPacketPush)
			return ok
		},
		Proxy: func(target any, around core.Around) any {
			return &pushProxy{target: target.(IPacketPush), around: around}
		},
	})
	core.Interfaces.MustRegister(&core.Descriptor{
		ID:  IPacketPullID,
		Doc: "pull-oriented packet hand-off; caller obtains next packet",
		Ops: []core.OpDesc{{Name: "Pull", NumIn: 0, NumOut: 2, Doc: "take next packet"}},
		Check: func(v any) bool {
			_, ok := v.(IPacketPull)
			return ok
		},
		Proxy: func(target any, around core.Around) any {
			return &pullProxy{target: target.(IPacketPull), around: around}
		},
	})
	core.Interfaces.MustRegister(&core.Descriptor{
		ID:  IClassifierID,
		Doc: "filter installation per §5 register_filter semantics",
		Ops: []core.OpDesc{
			{Name: "RegisterFilter", NumIn: 3, NumOut: 2, Doc: "install a filter spec routed to a named output"},
			{Name: "UnregisterFilter", NumIn: 1, NumOut: 1, Doc: "remove an installed filter"},
			{Name: "FilterOutputs", NumIn: 0, NumOut: 1, Doc: "list routable output names"},
		},
		Check: func(v any) bool {
			_, ok := v.(IClassifier)
			return ok
		},
		Proxy: func(target any, around core.Around) any {
			return &classifierProxy{target: target.(IClassifier), around: around}
		},
	})
}
