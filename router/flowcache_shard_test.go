package router

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"testing"

	"netkit/cf"
	"netkit/core"
)

// This file proves the megaflow cache is invisible to routing semantics in
// the two settings the ISSUE names: arbitrary batch segmentation with
// interleaved rule-table swaps (FuzzCacheTransparency), and a 4-shard CF
// whose rule tables are swapped mid-replay under concurrent traffic
// (TestFlowCacheInvalidationUnderShardedTraffic), plus the stats-tree
// acceptance test mirroring PR 5's lane-histogram check.

// buildTransparencyClassifier wires a classifier with recording sinks on
// outputs "a", "b" and "default" plus a cache-worthy base rule set: src
// ports 1000..1007 alternate between a and b at priority 10.
func buildTransparencyClassifier(t testing.TB, cached bool) (*Classifier, map[string]*recordingSink) {
	t.Helper()
	c := core.NewCapsule("transp")
	cls, err := NewClassifier("a", "b", "default")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("cls", cls); err != nil {
		t.Fatal(err)
	}
	sinks := map[string]*recordingSink{}
	for _, out := range []string{"a", "b", "default"} {
		s := newRecordingSink()
		sinks[out] = s
		if err := c.Insert("sink_"+out, s); err != nil {
			t.Fatal(err)
		}
		if _, err := ConnectPush(c, "cls", out, "sink_"+out); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		out := "a"
		if i%2 == 1 {
			out = "b"
		}
		if _, err := cls.RegisterFilter(fmt.Sprintf("udp and src port %d", 1000+i), 10, out); err != nil {
			t.Fatal(err)
		}
	}
	if !cached {
		if err := cls.FlowCacheResize(0); err != nil {
			t.Fatal(err)
		}
	}
	return cls, sinks
}

// FuzzCacheTransparency replays one fuzz-chosen packet stream twice — once
// through a cached classifier fed fuzz-segmented batches, once through an
// uncached classifier fed per packet — applying the IDENTICAL rule-table
// mutation sequence to both at batch boundaries, and requires identical
// per-output per-flow delivery. This is the cache's whole contract: for
// any batch split and any interleaved rule swap, a verdict cache may only
// change WHEN classification happens, never what it answers.
func FuzzCacheTransparency(f *testing.F) {
	f.Add(uint64(1), []byte{4, 9}, []byte{0, 1, 7})
	f.Add(uint64(7), []byte{1}, []byte{})
	f.Add(uint64(99), []byte{32, 3, 17}, []byte{0, 0, 4, 1, 2, 8})
	f.Add(uint64(1234), []byte{}, []byte{0, 1, 0, 1})
	f.Fuzz(func(t *testing.T, seed uint64, splits []byte, muts []byte) {
		if seed == 0 {
			seed = 1
		}
		rng := xorshift(seed)
		const total, flows = 160, 24

		type unit struct{ flow, seq uint32 }
		stream := make([]unit, total)
		seqs := make([]uint32, flows)
		for i := range stream {
			fl := uint32(rng.next() % flows)
			stream[i] = unit{fl, seqs[fl]}
			seqs[fl]++
		}
		// Batch boundaries from the fuzzed split list.
		bounds := make([]int, 0, 8)
		pos, k := 0, 0
		for pos < total {
			n := 1
			if len(splits) > 0 {
				n = 1 + int(splits[k%len(splits)]%32)
				k++
			}
			pos += n
			if pos > total {
				pos = total
			}
			bounds = append(bounds, pos)
		}

		// mutate applies mutation step m to cls; `ids` carries the rule IDs
		// this classifier got for earlier adds, so the cached and uncached
		// runs remove the same rule. Returns the updated id list.
		mutate := func(tb testing.TB, cls *Classifier, ids []uint64, m byte) []uint64 {
			switch m % 4 {
			case 0: // shadow or extend: higher-priority re-route of a port
				out := "a"
				if m%8 >= 4 {
					out = "b"
				}
				id, err := cls.RegisterFilter(
					fmt.Sprintf("udp and src port %d", 1000+int(m)%32), int(m%5), out)
				if err != nil {
					tb.Fatal(err)
				}
				return append(ids, id)
			case 1: // retire the oldest added rule
				if len(ids) > 0 {
					if err := cls.UnregisterFilter(ids[0]); err != nil {
						tb.Fatal(err)
					}
					return ids[1:]
				}
			}
			return ids
		}

		run := func(cached bool) map[string]*recordingSink {
			cls, sinks := buildTransparencyClassifier(t, cached)
			var ids []uint64
			start := 0
			for bi, end := range bounds {
				if cached {
					batch := GetBatch()
					for _, u := range stream[start:end] {
						batch = append(batch, mkFlowPacket(t, u.flow, u.seq))
					}
					if err := cls.PushBatch(batch); err != nil {
						t.Fatal(err)
					}
					PutBatch(batch)
				} else {
					for _, u := range stream[start:end] {
						if err := cls.Push(mkFlowPacket(t, u.flow, u.seq)); err != nil {
							t.Fatal(err)
						}
					}
				}
				if len(muts) > 0 {
					ids = mutate(t, cls, ids, muts[bi%len(muts)])
				}
				start = end
			}
			return sinks
		}

		cachedSinks := run(true)
		uncachedSinks := run(false)
		for _, out := range []string{"a", "b", "default"} {
			cs, us := cachedSinks[out], uncachedSinks[out]
			if cs.total() != us.total() {
				t.Fatalf("output %s: cached delivered %d, uncached %d",
					out, cs.total(), us.total())
			}
			for fl, want := range us.flows {
				got := cs.flows[fl]
				if len(got) != len(want) {
					t.Fatalf("output %s flow %d: cached got %d packets, uncached %d",
						out, fl, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("output %s flow %d position %d: cached seq %d, uncached %d",
							out, fl, i, got[i], want[i])
					}
				}
			}
		}
	})
}

// ---- sharded invalidation ---------------------------------------------------

// classifierReplica builds ingress -> classifier -> {hot: counter ->
// egress, default: egress}. The base rules (src ports 2000..2007, which
// test traffic never carries) make the table cache-worthy while routing
// all traffic to default — so the "hot" counter reads exactly the packets
// classified to "hot" by later-installed rules, making stale cached
// verdicts directly countable.
func classifierReplica(shard int, fw *cf.Framework) (string, error) {
	name := ShardName(shard, "cls")
	cls, err := NewClassifier("hot", "default")
	if err != nil {
		return "", err
	}
	if err := fw.Admit(name, cls); err != nil {
		return "", err
	}
	hotName := ShardName(shard, "hotcnt")
	if err := fw.Admit(hotName, NewCounter()); err != nil {
		return "", err
	}
	if _, err := fw.Capsule().Bind(name, "hot", hotName, IPacketPushID); err != nil {
		return "", err
	}
	if _, err := fw.Capsule().Bind(hotName, "out", ShardName(shard, "egress"), IPacketPushID); err != nil {
		return "", err
	}
	if _, err := fw.Capsule().Bind(name, "default", ShardName(shard, "egress"), IPacketPushID); err != nil {
		return "", err
	}
	for i := 0; i < 8; i++ {
		if _, err := cls.RegisterFilter(fmt.Sprintf("udp and src port %d", 2000+i), 10, "hot"); err != nil {
			return "", err
		}
	}
	return name, nil
}

// replicaClassifiers resolves every shard's classifier instance through
// the CF's inner capsule (the meta-space path an adaptation manager uses).
func replicaClassifiers(t testing.TB, s *ShardedCF) []*Classifier {
	t.Helper()
	out := make([]*Classifier, s.Shards())
	for i := range out {
		comp, ok := s.Inner().Component(ShardName(i, "cls"))
		if !ok {
			t.Fatalf("shard %d classifier missing", i)
		}
		out[i] = comp.(*Classifier)
	}
	return out
}

// TestFlowCacheInvalidationUnderShardedTraffic is the ISSUE's stress test:
// a 4-shard CF of cached classifiers takes continuous multi-flow traffic
// while every replica's rule table churns concurrently (race coverage for
// snapshot/cache publication); then, with the table warm in every cache, a
// rule swap re-routes an already-cached flow and a fenced probe asserts
// ZERO stale verdicts — every probe packet lands on the new route — plus
// zero loss and audit-count conservation across the whole run.
func TestFlowCacheInvalidationUnderShardedTraffic(t *testing.T) {
	const (
		shards     = 4
		flows      = 32
		churnRnds  = 150
		warmRounds = 120
		probes     = 200
		probeFlow  = 5 // src port 1005
	)
	_, s, sink := buildSharded(t, shards, classifierReplica)
	classifiers := replicaClassifiers(t, s)

	var audited uint64
	var auditMu sync.Mutex
	if err := s.Intercept("ingress", "out", "audit", core.PrePost(func(op string, args []any) {
		auditMu.Lock()
		audited += uint64(PacketCount(op, args))
		auditMu.Unlock()
	}, nil)); err != nil {
		t.Fatal(err)
	}

	// Phase 1: traffic and rule churn race. The churn rule (src port 2100)
	// never matches traffic, so routing is stable while generations advance
	// constantly — the hostile case for cache invalidation.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < churnRnds; r++ {
			for _, cls := range classifiers {
				id, err := cls.RegisterFilter("udp and src port 2100", 1, "hot")
				if err != nil {
					t.Error(err)
					return
				}
				if err := cls.UnregisterFilter(id); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	seqs := make([]uint32, flows)
	total := 0
	for round := 0; round < warmRounds; round++ {
		batch := GetBatch()
		for fl := uint32(0); fl < flows; fl++ {
			batch = append(batch, mkFlowPacket(t, fl, seqs[fl]))
			seqs[fl]++
			total++
		}
		if err := s.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
		PutBatch(batch)
	}
	wg.Wait()
	quiesce(t, s)
	if got := sink.total(); got != total {
		t.Fatalf("warm phase: sink received %d of %d", got, total)
	}
	sink.perFlowInOrder(t)

	// The caches must actually be in play before invalidation means much.
	var warmHits uint64
	for _, cls := range classifiers {
		h, _, _ := cls.FlowCache().Counters()
		warmHits += h
	}
	if warmHits == 0 {
		t.Fatal("warm phase produced zero cache hits; stress proves nothing")
	}

	// Phase 2: fenced probe. Flow 5's default verdict sits warm in its
	// shard's cache; re-route it to "hot" on every replica, then replay it.
	hotBefore := uint64(0)
	for i := 0; i < shards; i++ {
		comp, _ := s.Inner().Component(ShardName(i, "hotcnt"))
		hotBefore += comp.(*Counter).ElemStats().In
	}
	if hotBefore != 0 {
		t.Fatalf("hot path saw %d packets before any matching rule existed", hotBefore)
	}
	for _, cls := range classifiers {
		if _, err := cls.RegisterFilter(
			fmt.Sprintf("udp and src port %d", 1000+probeFlow), 1, "hot"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < probes; i++ {
		if err := s.Push(mkFlowPacket(t, probeFlow, seqs[probeFlow])); err != nil {
			t.Fatal(err)
		}
		seqs[probeFlow]++
		total++
	}
	quiesce(t, s)

	hotAfter := uint64(0)
	for i := 0; i < shards; i++ {
		comp, _ := s.Inner().Component(ShardName(i, "hotcnt"))
		hotAfter += comp.(*Counter).ElemStats().In
	}
	if got := hotAfter - hotBefore; got != probes {
		t.Fatalf("stale verdicts: %d of %d probes bypassed the new rule", probes-int(got), probes)
	}

	// Zero loss + audit conservation over the whole run.
	if got := sink.total(); got != total {
		t.Fatalf("sink received %d of %d", got, total)
	}
	sink.perFlowInOrder(t)
	auditMu.Lock()
	aud := audited
	auditMu.Unlock()
	if aud != uint64(total) {
		t.Fatalf("audit counted %d of %d", aud, total)
	}
	st := s.ElemStats()
	if st.In != uint64(total) || st.Out != uint64(total) || st.Dropped != 0 || st.Errors != 0 {
		t.Fatalf("CF stats %+v, want in=out=%d dropped=0", st, total)
	}
}

// TestFlowCacheStatsTreeAcrossShards is the stats-tree acceptance test:
// every lane's classifier exposes its cache counters in the CF's stats
// tree, the per-lane lookups account for every packet exactly once, and
// merging the lane classifiers at the root follows the repo's MergeStats
// conventions — counters SUM, ratio gauges AVERAGE weighted by lookups
// (mirroring PR 5's lane-histogram acceptance test).
func TestFlowCacheStatsTreeAcrossShards(t *testing.T) {
	const shards, flows, rounds = 4, 16, 6
	_, s, sink := buildSharded(t, shards, classifierReplica)
	total := 0
	for round := 0; round < rounds; round++ {
		batch := GetBatch()
		for fl := uint32(0); fl < flows; fl++ {
			batch = append(batch, mkFlowPacket(t, fl, uint32(round)))
			total++
		}
		if err := s.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
		PutBatch(batch)
	}
	quiesce(t, s)
	if sink.total() != total {
		t.Fatalf("sink received %d of %d", sink.total(), total)
	}

	tree := s.StatsTree()
	var laneHits, laneMisses, laneEntries float64
	var hitrates, laneWeights []float64
	laneStats := make([][]core.Stat, 0, shards)
	for i := 0; i < shards; i++ {
		lane, ok := tree.Find("shard" + strconv.Itoa(i))
		if !ok {
			t.Fatalf("no lane shard%d in stats tree", i)
		}
		var clsNode *core.StatNode
		for j := range lane.Children {
			if lane.Children[j].Name == ShardName(i, "cls") {
				clsNode = &lane.Children[j]
			}
		}
		if clsNode == nil {
			t.Fatalf("lane shard%d lacks its classifier child: %+v", i, lane.Children)
		}
		got := map[string]core.Stat{}
		for _, st := range clsNode.Stats {
			got[st.Name] = st
		}
		for _, name := range []string{"flowcache_hits", "flowcache_misses",
			"flowcache_evictions", "flowcache_entries", "flowcache_capacity", "flowcache_hitrate"} {
			if _, ok := got[name]; !ok {
				t.Fatalf("lane shard%d classifier lacks %s: %v", i, name, clsNode.Stats)
			}
		}
		if got["flowcache_hitrate"].Unit != "ratio" || got["flowcache_hitrate"].Kind != core.KindGauge {
			t.Fatalf("hitrate must be a ratio gauge, got %+v", got["flowcache_hitrate"])
		}
		lookups := got["flowcache_hits"].Value + got["flowcache_misses"].Value
		if w := got["flowcache_hitrate"].Weight; math.Abs(w-lookups) > 1e-9 {
			t.Fatalf("hitrate weight %v, want lane lookups %v", w, lookups)
		}
		laneHits += got["flowcache_hits"].Value
		laneMisses += got["flowcache_misses"].Value
		laneEntries += got["flowcache_entries"].Value
		hitrates = append(hitrates, got["flowcache_hitrate"].Value)
		laneWeights = append(laneWeights, lookups)
		laneStats = append(laneStats, clsNode.Stats)
	}

	// Conservation: every packet probed exactly one lane's cache; each
	// flow missed once (its first packet) and was cached in one lane.
	if laneHits+laneMisses != float64(total) {
		t.Fatalf("lane lookups %v+%v != %d packets", laneHits, laneMisses, total)
	}
	if laneMisses != flows {
		t.Fatalf("lane misses %v, want one per flow (%d)", laneMisses, flows)
	}
	if laneEntries != flows {
		t.Fatalf("lane occupancy %v, want %d", laneEntries, flows)
	}

	// Root merge: counters sum, ratio gauges average.
	merged := map[string]core.Stat{}
	for _, st := range core.MergeStats(laneStats...) {
		merged[st.Name] = st
	}
	if merged["flowcache_hits"].Value != laneHits || merged["flowcache_misses"].Value != laneMisses {
		t.Fatalf("merged counters %v/%v, want %v/%v",
			merged["flowcache_hits"].Value, merged["flowcache_misses"].Value, laneHits, laneMisses)
	}
	// The merge is weighted by lookups, so the root hit rate equals the
	// fleet-wide hits/lookups — idle lanes cannot drag it.
	var wsum, wval float64
	for i, r := range hitrates {
		wval += r * laneWeights[i]
		wsum += laneWeights[i]
	}
	wantRate := wval / wsum
	if math.Abs(merged["flowcache_hitrate"].Value-wantRate) > 1e-9 {
		t.Fatalf("merged hitrate %v, want lookup-weighted average %v",
			merged["flowcache_hitrate"].Value, wantRate)
	}
	if math.Abs(wantRate-laneHits/(laneHits+laneMisses)) > 1e-9 {
		t.Fatalf("weighted lane average %v diverges from global rate %v",
			wantRate, laneHits/(laneHits+laneMisses))
	}
	if math.Abs(merged["flowcache_hitrate"].Weight-wsum) > 1e-9 {
		t.Fatalf("merged hitrate weight %v, want total lookups %v",
			merged["flowcache_hitrate"].Weight, wsum)
	}
}
