package router

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"netkit/core"
	"netkit/internal/osabs"
	"netkit/packet"
)

// batchSink collects packets and records how they arrived (per-packet
// pushes vs whole batches).
type batchSink struct {
	*core.Base
	mu      sync.Mutex
	pkts    []*Packet
	pushes  int
	batches int
}

func newBatchSink() *batchSink {
	s := &batchSink{Base: core.NewBase("test.BatchSink")}
	s.Provide(IPacketPushID, s)
	return s
}

func (s *batchSink) Push(p *Packet) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pushes++
	s.pkts = append(s.pkts, p)
	return nil
}

func (s *batchSink) PushBatch(batch []*Packet) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	s.pkts = append(s.pkts, batch...) // pointers copied; slice not retained
	return nil
}

func (s *batchSink) snapshot() (pkts []*Packet, pushes, batches int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Packet(nil), s.pkts...), s.pushes, s.batches
}

func mkBatch(t *testing.T, n int) []*Packet {
	t.Helper()
	batch := make([]*Packet, n)
	for i := range batch {
		batch[i] = udpPkt(t, uint16(1000+i), 64)
	}
	return batch
}

// dstPorts projects the destination-port sequence of a packet slice, the
// ordering fingerprint used by the equivalence tests.
func dstPorts(ps []*Packet) []uint16 {
	out := make([]uint16, len(ps))
	for i, p := range ps {
		out[i] = p.View().DstPort
	}
	return out
}

func equalPorts(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- ForwardBatch shim ----------------------------------------------------

func TestForwardBatchFallbackPerPacket(t *testing.T) {
	dst := newSink() // push-only: no PushBatch
	batch := mkBatch(t, 8)
	if err := ForwardBatch(dst, batch); err != nil {
		t.Fatal(err)
	}
	if dst.count() != 8 {
		t.Fatalf("delivered %d, want 8", dst.count())
	}
	for i, p := range dst.pkts {
		if p != batch[i] {
			t.Fatalf("packet %d out of order", i)
		}
	}
}

func TestForwardBatchFastPath(t *testing.T) {
	dst := newBatchSink()
	batch := mkBatch(t, 8)
	if err := ForwardBatch(dst, batch); err != nil {
		t.Fatal(err)
	}
	pkts, pushes, batches := dst.snapshot()
	if len(pkts) != 8 || pushes != 0 || batches != 1 {
		t.Fatalf("pkts=%d pushes=%d batches=%d, want 8/0/1", len(pkts), pushes, batches)
	}
}

func TestPacketCount(t *testing.T) {
	batch := make([]*Packet, 5)
	if got := PacketCount("PushBatch", []any{batch}); got != 5 {
		t.Fatalf("PushBatch count = %d, want 5", got)
	}
	if got := PacketCount("Push", []any{&Packet{}}); got != 1 {
		t.Fatalf("Push count = %d, want 1", got)
	}
	if got := PacketCount("PushBatch", nil); got != 1 {
		t.Fatalf("malformed PushBatch count = %d, want 1", got)
	}
}

func TestBatchPoolRoundTrip(t *testing.T) {
	b := GetBatch()
	if len(b) != 0 {
		t.Fatalf("pooled batch len = %d, want 0", len(b))
	}
	b = append(b, udpPkt(t, 1, 64))
	PutBatch(b)
	b2 := GetBatch()
	if len(b2) != 0 {
		t.Fatalf("recycled batch len = %d, want 0", len(b2))
	}
	for _, p := range b2[:cap(b2)] {
		if p != nil {
			t.Fatal("recycled batch pins a packet")
		}
	}
}

// ---- interception on the batch path --------------------------------------

// TestBatchInterceptorWrapsOnce: with a batch-capable target, the chain
// sees the whole batch as ONE "PushBatch" operation, and an audit using
// PacketCount still observes every packet exactly once.
func TestBatchInterceptorWrapsOnce(t *testing.T) {
	c := newCap()
	head := NewCounter()
	tail := newBatchSink()
	if err := c.Insert("head", head); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("tail", tail); err != nil {
		t.Fatal(err)
	}
	b, err := ConnectPush(c, "head", "out", "tail")
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	var audited int
	if err := b.AddInterceptor(core.Interceptor{
		Name: "audit",
		Wrap: core.PrePost(func(op string, args []any) {
			ops = append(ops, op)
			audited += PacketCount(op, args)
		}, nil),
	}); err != nil {
		t.Fatal(err)
	}
	batch := mkBatch(t, 32)
	if err := head.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0] != "PushBatch" {
		t.Fatalf("chain crossings = %v, want exactly one PushBatch", ops)
	}
	if audited != 32 {
		t.Fatalf("audit observed %d packets, want 32", audited)
	}
	pkts, _, batches := tail.snapshot()
	if len(pkts) != 32 || batches != 1 {
		t.Fatalf("delivered %d in %d batches, want 32 in 1", len(pkts), batches)
	}
	for i, p := range pkts {
		if p != batch[i] {
			t.Fatalf("packet %d out of order through intercepted batch", i)
		}
	}
}

// TestBatchInterceptorFallback: with a per-packet-only target, the proxy
// degrades to per-packet "Push" operations — the audit still observes
// every packet exactly once, never zero times and never twice.
func TestBatchInterceptorFallback(t *testing.T) {
	c := newCap()
	head := NewCounter()
	tail := newSink()
	if err := c.Insert("head", head); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("tail", tail); err != nil {
		t.Fatal(err)
	}
	b, err := ConnectPush(c, "head", "out", "tail")
	if err != nil {
		t.Fatal(err)
	}
	var pushOps, audited int
	if err := b.AddInterceptor(core.Interceptor{
		Name: "audit",
		Wrap: core.PrePost(func(op string, args []any) {
			if op == "Push" {
				pushOps++
			}
			audited += PacketCount(op, args)
		}, nil),
	}); err != nil {
		t.Fatal(err)
	}
	batch := mkBatch(t, 16)
	if err := head.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	if pushOps != 16 || audited != 16 {
		t.Fatalf("pushOps=%d audited=%d, want 16/16", pushOps, audited)
	}
	if tail.count() != 16 {
		t.Fatalf("delivered %d, want 16", tail.count())
	}
}

// ---- per-component equivalence -------------------------------------------

// TestClassifierBatchEquivalence: batch classification routes every packet
// to the same output, in the same order, as per-packet classification.
func TestClassifierBatchEquivalence(t *testing.T) {
	build := func(a, b core.Component) (*Classifier, error) {
		c := newCap()
		cls, err := NewClassifier("a", "b", "default")
		if err != nil {
			return nil, err
		}
		if err := c.Insert("cls", cls); err != nil {
			return nil, err
		}
		if err := c.Insert("sa", a); err != nil {
			return nil, err
		}
		if err := c.Insert("sb", b); err != nil {
			return nil, err
		}
		if _, err := ConnectPush(c, "cls", "a", "sa"); err != nil {
			return nil, err
		}
		if _, err := ConnectPush(c, "cls", "b", "sb"); err != nil {
			return nil, err
		}
		if _, err := cls.RegisterFilter("udp and dst port 1001", 1, "a"); err != nil {
			return nil, err
		}
		if _, err := cls.RegisterFilter("udp and dst port 1003", 1, "b"); err != nil {
			return nil, err
		}
		return cls, nil
	}
	mk := func(t *testing.T) []*Packet {
		// Mixed traffic: runs and alternations across a, b and drop.
		ports := []uint16{1001, 1001, 1003, 1001, 9999, 9999, 1003, 1003, 1001, 9999}
		out := make([]*Packet, len(ports))
		for i, port := range ports {
			out[i] = udpPkt(t, port, 64)
		}
		return out
	}

	aPer, bPer := newSink(), newSink()
	clsPer, err := build(aPer, bPer)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range mk(t) {
		if err := clsPer.Push(p); err != nil {
			t.Fatal(err)
		}
	}

	aBat, bBat := newBatchSink(), newBatchSink()
	clsBat, err := build(aBat, bBat)
	if err != nil {
		t.Fatal(err)
	}
	if err := clsBat.PushBatch(mk(t)); err != nil {
		t.Fatal(err)
	}

	gotA, _, _ := aBat.snapshot()
	gotB, _, _ := bBat.snapshot()
	if !equalPorts(dstPorts(aPer.pkts), dstPorts(gotA)) {
		t.Fatalf("output a diverged: per-packet %v vs batch %v",
			dstPorts(aPer.pkts), dstPorts(gotA))
	}
	if !equalPorts(dstPorts(bPer.pkts), dstPorts(gotB)) {
		t.Fatalf("output b diverged: per-packet %v vs batch %v",
			dstPorts(bPer.pkts), dstPorts(gotB))
	}
	per, bat := clsPer.ElemStats(), clsBat.ElemStats()
	if per.Dropped != bat.Dropped || per.In != bat.In {
		t.Fatalf("stats diverged: %+v vs %+v", per, bat)
	}
}

func TestFIFOQueueBatchOverflow(t *testing.T) {
	q, err := NewFIFOQueue(4)
	if err != nil {
		t.Fatal(err)
	}
	batch := mkBatch(t, 6)
	if err := q.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 4 {
		t.Fatalf("queued %d, want 4", q.Len())
	}
	if st := q.ElemStats(); st.Dropped != 2 || st.In != 6 {
		t.Fatalf("stats = %+v, want 2 dropped of 6", st)
	}
	got := q.PullBatch(nil, 10)
	if len(got) != 4 {
		t.Fatalf("pulled %d, want 4", len(got))
	}
	for i, p := range got {
		if p != batch[i] {
			t.Fatalf("FIFO order violated at %d", i)
		}
	}
	if _, err := q.Pull(); err != ErrNoPacket {
		t.Fatalf("drained queue Pull err = %v", err)
	}
}

// TestREDQueueBatchEquivalence: with identical deterministic RNGs and
// identical arrivals, batch admission takes exactly the per-packet path's
// decisions (the EWMA is per-arrival either way).
func TestREDQueueBatchEquivalence(t *testing.T) {
	mkRng := func() func() float64 {
		state := uint64(12345)
		return func() float64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return float64(state>>11) / (1 << 53)
		}
	}
	cfg := REDConfig{Capacity: 64, MinTh: 8, MaxTh: 48, MaxP: 0.5, Weight: 0.2}
	cfg.Rand = mkRng()
	qPer, err := NewREDQueue(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Rand = mkRng()
	qBat, err := NewREDQueue(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	perIn := make([]*Packet, n)
	batIn := make([]*Packet, n)
	for i := 0; i < n; i++ {
		perIn[i] = udpPkt(t, uint16(i), 64)
		batIn[i] = udpPkt(t, uint16(i), 64)
	}
	for _, p := range perIn {
		if err := qPer.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := qBat.PushBatch(batIn); err != nil {
		t.Fatal(err)
	}
	if qPer.Len() != qBat.Len() {
		t.Fatalf("queue lengths diverged: %d vs %d", qPer.Len(), qBat.Len())
	}
	if qPer.EarlyDrops() != qBat.EarlyDrops() || qPer.ForcedDrops() != qBat.ForcedDrops() {
		t.Fatalf("drop mix diverged: early %d/%d forced %d/%d",
			qPer.EarlyDrops(), qBat.EarlyDrops(), qPer.ForcedDrops(), qBat.ForcedDrops())
	}
	var perOut, batOut []*Packet
	perOut = qPer.PullBatch(perOut, n)
	batOut = qBat.PullBatch(batOut, n)
	if !equalPorts(dstPorts(perOut), dstPorts(batOut)) {
		t.Fatal("admitted packet sequences diverged")
	}
}

// TestSchedulerRunOnceBatchOrdering: RunOnceBatch emits the same packets
// in the same order as RunOnce under the same discipline, delivering them
// downstream as one batch.
func TestSchedulerRunOnceBatchOrdering(t *testing.T) {
	build := func(dst core.Component) (*LinkScheduler, []*FIFOQueue, error) {
		c := newCap()
		s, err := NewLinkScheduler(PolicyDRR)
		if err != nil {
			return nil, nil, err
		}
		if err := s.AddInput("q0", 200, 0); err != nil {
			return nil, nil, err
		}
		if err := s.AddInput("q1", 100, 0); err != nil {
			return nil, nil, err
		}
		if err := c.Insert("sched", s); err != nil {
			return nil, nil, err
		}
		if err := c.Insert("dst", dst); err != nil {
			return nil, nil, err
		}
		qs := make([]*FIFOQueue, 2)
		for i := range qs {
			q, err := NewFIFOQueue(64)
			if err != nil {
				return nil, nil, err
			}
			qs[i] = q
		}
		if err := c.Insert("fq0", qs[0]); err != nil {
			return nil, nil, err
		}
		if err := c.Insert("fq1", qs[1]); err != nil {
			return nil, nil, err
		}
		if _, err := ConnectPull(c, "sched", "q0", "fq0"); err != nil {
			return nil, nil, err
		}
		if _, err := ConnectPull(c, "sched", "q1", "fq1"); err != nil {
			return nil, nil, err
		}
		if _, err := ConnectPush(c, "sched", "out", "dst"); err != nil {
			return nil, nil, err
		}
		return s, qs, nil
	}
	fill := func(t *testing.T, qs []*FIFOQueue) {
		for i := 0; i < 12; i++ {
			if err := qs[0].Push(udpPkt(t, uint16(100+i), 64)); err != nil {
				t.Fatal(err)
			}
			if err := qs[1].Push(udpPkt(t, uint16(200+i), 64)); err != nil {
				t.Fatal(err)
			}
		}
	}

	perSink := newSink()
	sPer, qsPer, err := build(perSink)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, qsPer)
	servedPer := sPer.RunOnce(24)

	batSink := newBatchSink()
	sBat, qsBat, err := build(batSink)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, qsBat)
	servedBat := sBat.RunOnceBatch(24)

	if servedPer != servedBat {
		t.Fatalf("served %d vs %d", servedPer, servedBat)
	}
	got, _, batches := batSink.snapshot()
	if batches != 1 {
		t.Fatalf("delivered in %d batches, want 1", batches)
	}
	if !equalPorts(dstPorts(perSink.pkts), dstPorts(got)) {
		t.Fatalf("emission order diverged:\nper-packet %v\nbatched    %v",
			dstPorts(perSink.pkts), dstPorts(got))
	}
}

// TestKernelSourceBatchedDelivery: the kernel-channel pump delivers whole
// batches through the pipeline, preserving frame order.
func TestKernelSourceBatchedDelivery(t *testing.T) {
	ch, err := osabs.NewKernelChannel(256)
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	src, err := NewKernelSource(ch, 16)
	if err != nil {
		t.Fatal(err)
	}
	c := newCap()
	tail := newBatchSink()
	if err := c.Insert("src", src); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("tail", tail); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(c, "src", "out", "tail"); err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		b, err := packet.BuildUDP4(srcA, dstA, 4000, uint16(i), 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := ch.Put(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		pkts, _, _ := tail.snapshot()
		if len(pkts) >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out with %d/%d packets", len(pkts), n)
		}
		time.Sleep(time.Millisecond)
	}
	if err := src.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	pkts, pushes, batches := tail.snapshot()
	if len(pkts) != n {
		t.Fatalf("delivered %d, want %d", len(pkts), n)
	}
	if pushes != 0 || batches == 0 {
		t.Fatalf("pushes=%d batches=%d, want batched delivery only", pushes, batches)
	}
	for i, p := range pkts {
		if p.View().DstPort != uint16(i) {
			t.Fatalf("frame %d out of order (port %d)", i, p.View().DstPort)
		}
	}
}

// ---------------------------------------------------------------------------
// Per-packet-exact batch error accounting (the forwardBatch contract)

var errFlaky = errors.New("test: flaky downstream")

// errBatchTarget is a batch-aware downstream returning a fixed error from
// every crossing (packets are accepted and released either way).
type errBatchTarget struct {
	*core.Base
	err error
}

func newErrBatchTarget(err error) *errBatchTarget {
	s := &errBatchTarget{Base: core.NewBase("test.ErrBatchTarget"), err: err}
	s.Provide(IPacketPushID, s)
	return s
}

func (s *errBatchTarget) Push(p *Packet) error {
	p.Release()
	return s.err
}

func (s *errBatchTarget) PushBatch(batch []*Packet) error {
	for _, p := range batch {
		p.Release()
	}
	return s.err
}

// oddPortTarget is per-packet only (no PushBatch): it fails packets with
// odd destination ports, so the ForwardBatch degradation loop must count
// exactly the odd ones.
type oddPortTarget struct {
	*core.Base
}

func newOddPortTarget() *oddPortTarget {
	s := &oddPortTarget{Base: core.NewBase("test.OddPortTarget")}
	s.Provide(IPacketPushID, s)
	return s
}

func (s *oddPortTarget) Push(p *Packet) error {
	odd := p.View().DstPort%2 == 1
	p.Release()
	if odd {
		return errFlaky
	}
	return nil
}

// TestForwardBatchErrorAccounting pins the per-packet-exact error
// cardinality of the batch path: a downstream failing k of n packets must
// cost the forwarding hop exactly k errs and n-k out — not one errs per
// crossing and not a forfeited out — and the error surfaced upstream must
// carry the same k. (The regression this guards: forwardBatch counted one
// errs per failing RUN and dropped the out increment entirely, so batched
// and per-packet traffic produced different books for identical streams.)
func TestForwardBatchErrorAccounting(t *testing.T) {
	drive := func(t *testing.T, dst core.Component, n int) (*Counter, error) {
		t.Helper()
		c := core.NewCapsule("batcherr")
		head := NewCounter()
		if err := c.Insert("head", head); err != nil {
			t.Fatal(err)
		}
		if err := c.Insert("dst", dst); err != nil {
			t.Fatal(err)
		}
		if _, err := ConnectPush(c, "head", "out", "dst"); err != nil {
			t.Fatal(err)
		}
		batch := make([]*Packet, n)
		for i := range batch {
			batch[i] = udpPkt(t, uint16(i), 64)
		}
		return head, head.PushBatch(batch)
	}
	check := func(t *testing.T, head *Counter, err error, n, wantFailed int) {
		t.Helper()
		if got := FailedPackets(err, n); got != wantFailed {
			t.Fatalf("surfaced error says %d failed (err=%v), want %d", got, err, wantFailed)
		}
		if wantFailed > 0 {
			var be *BatchError
			if !errors.As(err, &be) {
				t.Fatalf("error not normalised to BatchError: %T %v", err, err)
			}
			if !errors.Is(err, errFlaky) {
				t.Fatalf("underlying error lost: %v", err)
			}
		}
		st := head.ElemStats()
		if st.In != uint64(n) || st.Errors != uint64(wantFailed) || st.Out != uint64(n-wantFailed) || st.Dropped != 0 {
			t.Fatalf("head counters in=%d out=%d dropped=%d errs=%d, want in=%d out=%d errs=%d",
				st.In, st.Out, st.Dropped, st.Errors, n, n-wantFailed, wantFailed)
		}
	}

	t.Run("batch-aware partial failure", func(t *testing.T) {
		head, err := drive(t, newErrBatchTarget(&BatchError{Failed: 2, Err: errFlaky}), 8)
		check(t, head, err, 8, 2)
	})
	t.Run("plain error fails the whole batch", func(t *testing.T) {
		head, err := drive(t, newErrBatchTarget(errFlaky), 8)
		check(t, head, err, 8, 8)
	})
	t.Run("overclaimed count clamps to batch size", func(t *testing.T) {
		head, err := drive(t, newErrBatchTarget(&BatchError{Failed: 999, Err: errFlaky}), 8)
		check(t, head, err, 8, 8)
	})
	t.Run("per-packet degradation counts each failure", func(t *testing.T) {
		head, err := drive(t, newOddPortTarget(), 8) // ports 0..7: four odd
		check(t, head, err, 8, 4)
	})
	t.Run("no failures", func(t *testing.T) {
		head, err := drive(t, newErrBatchTarget(nil), 8)
		check(t, head, err, 8, 0)
	})
}
