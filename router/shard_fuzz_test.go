package router

import (
	"bytes"
	"context"
	"net/netip"
	"testing"
	"time"

	"netkit/core"
	"netkit/packet"
)

// Fuzz targets for the two load-bearing properties of the sharded data
// plane (DESIGN.md §4.5): the flow hash keys only on flow identity (so a
// flow's packets never migrate between shards mid-life), and a sharded
// pipeline delivers exactly the per-flow sequences the equivalent single
// pipeline delivers, for ANY batch segmentation of the input.

// flowFieldEnd returns the index after the bytes FlowHashRaw may read
// (header + ports), or -1 when the input is unparseable; flowStart/the
// returned mutable set excludes addresses/proto/ports.
func hashedRegions(b []byte) (mutable func(i int) bool, parseable bool) {
	if len(b) < 1 {
		return nil, false
	}
	switch b[0] >> 4 {
	case 4:
		if len(b) < 20 {
			return nil, false
		}
		ihl := int(b[0]&0x0f) * 4
		proto := b[9]
		ports := (proto == packet.ProtoTCP || proto == packet.ProtoUDP) &&
			ihl >= 20 && len(b) >= ihl+4
		return func(i int) bool {
			switch {
			case i == 0: // version/IHL select the parse; keep them
				return false
			case i >= 12 && i < 20: // addresses
				return false
			case i == 9: // protocol
				return false
			case ports && i >= ihl && i < ihl+4: // ports
				return false
			}
			return true
		}, true
	case 6:
		if len(b) < packet.IPv6HeaderLen {
			return nil, false
		}
		proto := b[6]
		ports := (proto == packet.ProtoTCP || proto == packet.ProtoUDP) &&
			len(b) >= packet.IPv6HeaderLen+4
		return func(i int) bool {
			switch {
			case i == 0:
				return false
			case i >= 8 && i < 40: // addresses
				return false
			case i == 6: // next header
				return false
			case ports && i >= 40 && i < 44:
				return false
			}
			return true
		}, true
	default:
		return nil, false
	}
}

// FuzzFlowHashStability checks, for arbitrary byte strings, that the flow
// hash (1) never panics, (2) is deterministic, (3) depends ONLY on the
// flow-identity bytes — mutating any other byte (TTL, checksum, payload)
// leaves the hash, and therefore the packet's shard for every shard
// count, unchanged. Same 5-tuple ⇒ same shard, always.
func FuzzFlowHashStability(f *testing.F) {
	src4 := netip.AddrFrom4([4]byte{10, 1, 2, 3})
	dst4 := netip.AddrFrom4([4]byte{10, 9, 8, 7})
	udp4, err := packet.BuildUDP4(src4, dst4, 1234, 53, 64, []byte("payload"))
	if err != nil {
		f.Fatal(err)
	}
	tcp4, err := packet.BuildTCP4(src4, dst4, 80, 4321, 12, 0x10, []byte("tcp data"))
	if err != nil {
		f.Fatal(err)
	}
	udp6, err := packet.BuildUDP6(netip.MustParseAddr("2001:db8::1"),
		netip.MustParseAddr("2001:db8::2"), 777, 53, 8, []byte("six"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(udp4, uint16(0x0107))
	f.Add(tcp4, uint16(0xbeef))
	f.Add(udp6, uint16(0x2a2a))
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{0x45, 0x00}, uint16(1))
	f.Add(bytes.Repeat([]byte{0x61}, 64), uint16(9))

	f.Fuzz(func(t *testing.T, data []byte, mutSeed uint16) {
		h := FlowHashRaw(data)
		if h != FlowHashRaw(data) {
			t.Fatal("hash not deterministic")
		}
		mutable, parseable := hashedRegions(data)
		if !parseable {
			if h != 0 {
				t.Fatalf("unparseable input hashed to %d, want 0", h)
			}
			return
		}
		// Mutate every non-flow byte (xor with a fuzzed non-zero mask):
		// the hash — and hence the shard for every shard count — must not
		// move. This covers TTL/hop-limit decrements, checksum updates and
		// payload rewrites in one sweep.
		mask := byte(mutSeed) | 1
		mutated := append([]byte(nil), data...)
		for i := range mutated {
			if mutable(i) {
				mutated[i] ^= mask
			}
		}
		if got := FlowHashRaw(mutated); got != h {
			t.Fatalf("non-flow mutation moved hash %d -> %d", h, got)
		}
		p1, p2 := NewPacket(data), NewPacket(mutated)
		for n := 1; n <= 8; n++ {
			if FlowShard(p1, n) != FlowShard(p2, n) {
				t.Fatalf("same flow split across shards at n=%d", n)
			}
		}
	})
}

// xorshift is the repo's deterministic test PRNG.
type xorshift uint64

func (x *xorshift) next() uint64 {
	*x ^= *x << 13
	*x ^= *x >> 7
	*x ^= *x << 17
	return uint64(*x)
}

// FuzzBatchEquivalence drives one packet stream through (a) a sharded CF
// under a fuzz-chosen shard count and batch segmentation and (b) the
// equivalent single pipeline per packet, and requires identical per-flow
// delivery: same packets, same per-flow order. This is the observational-
// equivalence contract of RSS sharding — parallelism may interleave flows
// against each other but must never reorder or lose a flow's packets.
//
// The downstream sink may also FAIL a fuzz-chosen deterministic subset of
// packets (failMod), pinning the per-packet-exact error books of the batch
// path: however the dispatcher segments the stream into per-lane
// sub-batches, the merged error count must equal the per-packet
// reference's, packet for packet — not one per failing run or crossing.
func FuzzBatchEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(3), []byte{3, 7, 1, 30}, uint8(0))
	f.Add(uint64(42), uint8(0), []byte{1}, uint8(0))
	f.Add(uint64(7), uint8(7), []byte{32, 32, 32}, uint8(0))
	f.Add(uint64(5), uint8(2), []byte{8, 3, 17}, uint8(3))
	f.Add(uint64(11), uint8(1), []byte{16}, uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, shardsRaw uint8, splits []byte, failMod uint8) {
		if seed == 0 {
			seed = 1
		}
		shards := 1 + int(shardsRaw%4)
		failEvery := uint32(failMod % 5) // 0..4; <2 disables failures
		rng := xorshift(seed)
		flows := 1 + int(rng.next()%13)
		const total = 192

		// The stream: packet i belongs to a pseudo-random flow and carries
		// that flow's next sequence number.
		type unit struct{ flow, seq uint32 }
		stream := make([]unit, total)
		seqs := make([]uint32, flows)
		for i := range stream {
			fl := uint32(rng.next() % uint64(flows))
			stream[i] = unit{fl, seqs[fl]}
			seqs[fl]++
		}

		// The deterministic failure set and its size.
		failSink := &recordingSink{failMod: failEvery}
		expectFailed := 0
		for _, u := range stream {
			if failSink.fails(u.flow, u.seq) {
				expectFailed++
			}
		}

		// (a) sharded, with fuzz-chosen batch splits.
		_, sharded, shardedSink := buildSharded(t, shards, counterReplica)
		shardedSink.failMod = failEvery
		batch := GetBatch()
		k := 0
		limit := func() int {
			if len(splits) == 0 {
				return 1
			}
			n := 1 + int(splits[k%len(splits)]%32)
			k++
			return n
		}
		lim := limit()
		for _, u := range stream {
			batch = append(batch, mkFlowPacket(t, u.flow, u.seq))
			if len(batch) >= lim {
				if err := sharded.PushBatch(batch); err != nil {
					t.Fatal(err)
				}
				batch = batch[:0]
				lim = limit()
			}
		}
		if err := sharded.PushBatch(batch); err != nil {
			t.Fatal(err)
		}
		PutBatch(batch)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := sharded.Quiesce(ctx); err != nil {
			t.Fatal(err)
		}

		// (b) the single-pipeline reference: one counter, per-packet push.
		refCapsule := core.NewCapsule("ref")
		refSink := newRecordingSink()
		refSink.failMod = failEvery
		entry := NewCounter()
		if err := refCapsule.Insert("cnt", entry); err != nil {
			t.Fatal(err)
		}
		if err := refCapsule.Insert("sink", refSink); err != nil {
			t.Fatal(err)
		}
		if _, err := ConnectPush(refCapsule, "cnt", "out", "sink"); err != nil {
			t.Fatal(err)
		}
		for _, u := range stream {
			err := entry.Push(mkFlowPacket(t, u.flow, u.seq))
			if wantErr := refSink.fails(u.flow, u.seq); (err != nil) != wantErr {
				t.Fatalf("flow %d seq %d: push err %v, want failure %v", u.flow, u.seq, err, wantErr)
			}
		}

		// Identical per-flow delivery.
		if shardedSink.total() != refSink.total() {
			t.Fatalf("sharded delivered %d, single delivered %d",
				shardedSink.total(), refSink.total())
		}

		// Stats conservation over the uniform IStats surface: the sum of
		// the per-replica lane arrival counters equals the merged egress
		// count — no packet is double-counted or lost between the
		// dispatcher's lanes and the merge.
		tree := sharded.StatsTree()
		var laneIn, laneOut float64
		lanes := 0
		for _, ch := range tree.Children {
			in, ok1 := ch.Stat("packets_in")
			out, ok2 := ch.Stat("packets_out")
			if !ok1 || !ok2 {
				t.Fatalf("lane %s lacks packet counters: %+v", ch.Name, ch.Stats)
			}
			laneIn += in.Value
			laneOut += out.Value
			lanes++
		}
		if lanes != shards {
			t.Fatalf("stats tree has %d lanes, want %d", lanes, shards)
		}
		merged := sharded.ElemStats()
		if uint64(laneIn) != merged.In || uint64(laneOut) != merged.Out {
			t.Fatalf("lane sums in=%v out=%v, merged in=%d out=%d",
				laneIn, laneOut, merged.In, merged.Out)
		}
		if merged.Out != uint64(total-expectFailed) || merged.Dropped != 0 {
			t.Fatalf("merged egress %d (dropped %d), want %d", merged.Out, merged.Dropped, total-expectFailed)
		}
		// Per-packet-exact error books: the merged sharded errors and the
		// per-packet reference's entry counter agree with the deterministic
		// failure set, regardless of how batches were split across lanes.
		if merged.Errors != uint64(expectFailed) {
			t.Fatalf("merged errors %d, want %d", merged.Errors, expectFailed)
		}
		refStats := entry.ElemStats()
		if refStats.Errors != uint64(expectFailed) || refStats.Out != uint64(total-expectFailed) {
			t.Fatalf("reference errors %d out %d, want %d and %d",
				refStats.Errors, refStats.Out, expectFailed, total-expectFailed)
		}
		shardedSink.mu.Lock()
		refSink.mu.Lock()
		defer shardedSink.mu.Unlock()
		defer refSink.mu.Unlock()
		if len(shardedSink.flows) != len(refSink.flows) {
			t.Fatalf("flow sets differ: %d vs %d", len(shardedSink.flows), len(refSink.flows))
		}
		for fl, want := range refSink.flows {
			got := shardedSink.flows[fl]
			if len(got) != len(want) {
				t.Fatalf("flow %d: sharded delivered %d, single %d", fl, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("flow %d diverges at %d: sharded %d, single %d",
						fl, i, got[i], want[i])
				}
			}
		}
	})
}
