package router

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"netkit/core"
)

// FIFOQueue is the standard store-and-forward element: IPacketPush on the
// input side, IPacketPull on the output side (the push/pull boundary in
// Figure 3 between the queueing and forwarding Gateway-CF instances).
// Overflow is drop-tail.
type FIFOQueue struct {
	*core.Base
	elementCounters

	mu   sync.Mutex
	ring []*Packet
	head int
	size int
}

// NewFIFOQueue creates a queue with the given capacity.
func NewFIFOQueue(capacity int) (*FIFOQueue, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("router: queue capacity %d", capacity)
	}
	q := &FIFOQueue{
		Base: core.NewBase(TypeFIFOQueue),
		ring: make([]*Packet, capacity),
	}
	q.Provide(IPacketPushID, q)
	q.Provide(IPacketPullID, q)
	return q, nil
}

// Push implements IPacketPush (drop-tail on overflow; the drop is counted
// and absorbed, not propagated, so upstream elements keep forwarding).
func (q *FIFOQueue) Push(p *Packet) error {
	q.in.Add(1)
	q.mu.Lock()
	if q.size == len(q.ring) {
		q.mu.Unlock()
		q.dropped.Add(1)
		p.Release()
		return nil
	}
	q.ring[(q.head+q.size)%len(q.ring)] = p
	q.size++
	q.mu.Unlock()
	return nil
}

// PushBatch implements IPacketPushBatch: the whole batch is admitted under
// one lock acquisition. Packets beyond the remaining capacity are dropped
// (drop-tail, exactly as the per-packet path would have dropped them). The
// packet pointers are copied into the ring — the batch slice itself is not
// retained.
func (q *FIFOQueue) PushBatch(batch []*Packet) error {
	q.in.Add(uint64(len(batch)))
	q.mu.Lock()
	free := len(q.ring) - q.size
	take := len(batch)
	if take > free {
		take = free
	}
	for _, p := range batch[:take] {
		q.ring[(q.head+q.size)%len(q.ring)] = p
		q.size++
	}
	q.mu.Unlock()
	if over := batch[take:]; len(over) > 0 {
		q.dropped.Add(uint64(len(over)))
		for _, p := range over {
			p.Release()
		}
	}
	return nil
}

// Pull implements IPacketPull.
func (q *FIFOQueue) Pull() (*Packet, error) {
	q.mu.Lock()
	if q.size == 0 {
		q.mu.Unlock()
		return nil, ErrNoPacket
	}
	p := q.ring[q.head]
	q.ring[q.head] = nil
	q.head = (q.head + 1) % len(q.ring)
	q.size--
	q.mu.Unlock()
	q.out.Add(1)
	return p, nil
}

// ringDrain pops up to max packets from a ring buffer into dst (appending,
// clearing vacated slots) and returns the extended slice plus the updated
// head, remaining size and count moved. Caller holds the queue lock.
func ringDrain(ring []*Packet, head, size, max int, dst []*Packet) ([]*Packet, int, int, int) {
	n := size
	if n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		dst = append(dst, ring[head])
		ring[head] = nil
		head = (head + 1) % len(ring)
	}
	return dst, head, size - n, n
}

// PullBatch moves up to max queued packets into dst (appending) under one
// lock acquisition and returns the extended slice: the batch-granular way
// to drain the push/pull boundary for callers that own their service loop.
// (The LinkScheduler still pulls per packet — its disciplines account
// bytes per packet — and batches on its egress side via RunOnceBatch.)
func (q *FIFOQueue) PullBatch(dst []*Packet, max int) []*Packet {
	if max <= 0 {
		return dst
	}
	q.mu.Lock()
	var n int
	dst, q.head, q.size, n = ringDrain(q.ring, q.head, q.size, max, dst)
	q.mu.Unlock()
	q.out.Add(uint64(n))
	return dst
}

// Len reports the queued packet count.
func (q *FIFOQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Capacity reports the configured limit.
func (q *FIFOQueue) Capacity() int { return len(q.ring) }

// Stats implements core.IStats, adding the depth and occupancy gauges the
// adaptation engine's queue rules watch.
func (q *FIFOQueue) Stats() []core.Stat {
	depth := q.Len()
	capacity := len(q.ring)
	return append(q.statList(),
		core.G("queue_len", "packets", float64(depth)),
		core.G("queue_cap", "packets", float64(capacity)),
		core.G("queue_occupancy", "ratio", float64(depth)/float64(capacity)))
}

// ---------------------------------------------------------------------------
// RED queue

// REDQueue implements Random Early Detection (Floyd & Jacobson): packets
// are dropped probabilistically as the EWMA of the queue length climbs
// between minTh and maxTh, and always beyond maxTh. It is one of the
// paper's example in-band functions ("diffserv schedulers, shapers" class).
type REDQueue struct {
	*core.Base
	elementCounters

	mu     sync.Mutex
	ring   []*Packet
	head   int
	size   int
	avg    float64
	count  int // packets since last early drop
	weight float64
	minTh  float64
	maxTh  float64
	maxP   float64
	rng    func() float64 // injectable for determinism

	earlyDrops  atomic.Uint64
	forcedDrops atomic.Uint64
}

// REDConfig parameterises a REDQueue.
type REDConfig struct {
	Capacity int
	MinTh    float64 // early-drop onset (packets)
	MaxTh    float64 // forced-drop onset (packets)
	MaxP     float64 // drop probability at MaxTh (0..1]
	Weight   float64 // EWMA weight (default 0.002)
	Rand     func() float64
}

// NewREDQueue creates a RED queue.
func NewREDQueue(cfg REDConfig) (*REDQueue, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("router: red capacity %d", cfg.Capacity)
	}
	if cfg.MinTh <= 0 || cfg.MaxTh <= cfg.MinTh || float64(cfg.Capacity) < cfg.MaxTh {
		return nil, fmt.Errorf("router: red thresholds min=%f max=%f cap=%d",
			cfg.MinTh, cfg.MaxTh, cfg.Capacity)
	}
	if cfg.MaxP <= 0 || cfg.MaxP > 1 {
		return nil, fmt.Errorf("router: red maxP %f", cfg.MaxP)
	}
	if cfg.Weight <= 0 || cfg.Weight > 1 {
		cfg.Weight = 0.002
	}
	if cfg.Rand == nil {
		// xorshift-based default; deterministic seeds are injected in tests.
		state := uint64(0x9e3779b97f4a7c15)
		cfg.Rand = func() float64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return float64(state>>11) / (1 << 53)
		}
	}
	q := &REDQueue{
		Base:   core.NewBase(TypeREDQueue),
		ring:   make([]*Packet, cfg.Capacity),
		weight: cfg.Weight,
		minTh:  cfg.MinTh,
		maxTh:  cfg.MaxTh,
		maxP:   cfg.MaxP,
		rng:    cfg.Rand,
	}
	q.Provide(IPacketPushID, q)
	q.Provide(IPacketPullID, q)
	return q, nil
}

// admitLocked runs the RED admission decision for one arriving packet and
// enqueues it when admitted. Caller holds q.mu.
func (q *REDQueue) admitLocked(p *Packet) (drop, forced bool) {
	q.avg = (1-q.weight)*q.avg + q.weight*float64(q.size)
	switch {
	case q.size == len(q.ring) || q.avg >= q.maxTh:
		drop, forced = true, true
	case q.avg >= q.minTh:
		pb := q.maxP * (q.avg - q.minTh) / (q.maxTh - q.minTh)
		pa := pb / (1 - float64(q.count)*pb)
		if pa < 0 || pa > 1 {
			pa = 1
		}
		if q.rng() < pa {
			drop = true
			q.count = 0
		} else {
			q.count++
		}
	default:
		q.count = 0
	}
	if !drop {
		q.ring[(q.head+q.size)%len(q.ring)] = p
		q.size++
	}
	return drop, forced
}

// Push implements IPacketPush with RED admission.
func (q *REDQueue) Push(p *Packet) error {
	q.in.Add(1)
	q.mu.Lock()
	drop, forced := q.admitLocked(p)
	q.mu.Unlock()
	if drop {
		if forced {
			q.forcedDrops.Add(1)
		} else {
			q.earlyDrops.Add(1)
		}
		q.dropped.Add(1)
		p.Release()
	}
	return nil
}

// PushBatch implements IPacketPushBatch: the RED decision stays strictly
// per-packet (the EWMA evolves arrival by arrival, so admission behaviour
// is identical to the per-packet path), but the whole batch is admitted
// under one lock acquisition. Dropped packets are released outside the
// lock.
func (q *REDQueue) PushBatch(batch []*Packet) error {
	q.in.Add(uint64(len(batch)))
	var drops []*Packet
	var early, forcedN uint64
	q.mu.Lock()
	for _, p := range batch {
		if drop, forced := q.admitLocked(p); drop {
			if forced {
				forcedN++
			} else {
				early++
			}
			drops = append(drops, p)
		}
	}
	q.mu.Unlock()
	if len(drops) > 0 {
		q.earlyDrops.Add(early)
		q.forcedDrops.Add(forcedN)
		q.dropped.Add(uint64(len(drops)))
		for _, p := range drops {
			p.Release()
		}
	}
	return nil
}

// Pull implements IPacketPull.
func (q *REDQueue) Pull() (*Packet, error) {
	q.mu.Lock()
	if q.size == 0 {
		q.mu.Unlock()
		return nil, ErrNoPacket
	}
	p := q.ring[q.head]
	q.ring[q.head] = nil
	q.head = (q.head + 1) % len(q.ring)
	q.size--
	q.mu.Unlock()
	q.out.Add(1)
	return p, nil
}

// PullBatch moves up to max queued packets into dst (appending) under one
// lock acquisition and returns the extended slice (see
// FIFOQueue.PullBatch).
func (q *REDQueue) PullBatch(dst []*Packet, max int) []*Packet {
	if max <= 0 {
		return dst
	}
	q.mu.Lock()
	var n int
	dst, q.head, q.size, n = ringDrain(q.ring, q.head, q.size, max, dst)
	q.mu.Unlock()
	q.out.Add(uint64(n))
	return dst
}

// Len reports the instantaneous queue length.
func (q *REDQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// AvgLen reports the EWMA queue length RED decides on.
func (q *REDQueue) AvgLen() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.avg
}

// EarlyDrops returns probabilistic drops; ForcedDrops returns over-max
// drops.
func (q *REDQueue) EarlyDrops() uint64 { return q.earlyDrops.Load() }

// ForcedDrops returns drops taken at or beyond the hard threshold.
func (q *REDQueue) ForcedDrops() uint64 { return q.forcedDrops.Load() }

// Stats implements core.IStats, adding depth/occupancy gauges, the EWMA
// length RED decides on, and the early/forced drop split.
func (q *REDQueue) Stats() []core.Stat {
	q.mu.Lock()
	depth, avg := q.size, q.avg
	q.mu.Unlock()
	capacity := len(q.ring)
	return append(q.statList(),
		core.G("queue_len", "packets", float64(depth)),
		core.G("queue_cap", "packets", float64(capacity)),
		core.G("queue_occupancy", "ratio", float64(depth)/float64(capacity)),
		core.G("queue_avg_len", "packets", avg),
		core.C("early_drops", "packets", q.earlyDrops.Load()),
		core.C("forced_drops", "packets", q.forcedDrops.Load()))
}

func init() {
	core.Components.MustRegister(TypeFIFOQueue, func(cfg map[string]string) (core.Component, error) {
		capacity := 128
		if s, ok := cfg["capacity"]; ok {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("router: queue capacity: %w", err)
			}
			capacity = v
		}
		return NewFIFOQueue(capacity)
	})
	core.Components.MustRegister(TypeREDQueue, func(cfg map[string]string) (core.Component, error) {
		conf := REDConfig{Capacity: 128, MinTh: 32, MaxTh: 96, MaxP: 0.1}
		if s, ok := cfg["capacity"]; ok {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("router: red capacity: %w", err)
			}
			conf.Capacity = v
			conf.MinTh = float64(v) / 4
			conf.MaxTh = float64(v) * 3 / 4
		}
		return NewREDQueue(conf)
	})
}
