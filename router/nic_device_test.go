package router

import (
	"context"
	"fmt"
	"testing"
	"time"

	"netkit/internal/buffers"
	"netkit/internal/osabs"
)

// devRig wires a NICSource over dev into a collecting sink inside a
// started capsule and returns the sink plus a stopper.
func devRig(t *testing.T, dev osabs.Device, pool *buffers.Pool, cfg PumpConfig) (*sink, *NICSource) {
	t.Helper()
	src, err := NewNICSourcePump(dev, pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := newCap()
	out := newSink()
	if err := c.Insert("src", src); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("out", out); err != nil {
		t.Fatal(err)
	}
	if _, err := ConnectPush(c, "src", "out", "out"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.StartAll(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.StopAll(ctx) })
	return out, src
}

func waitCount(t *testing.T, s *sink, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.count() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := s.count(); got != want {
		t.Fatalf("sink holds %d of %d packets", got, want)
	}
}

// TestNICSourceUDPArenaZeroCopy drives real loopback UDP through the
// polling pump with an arena-backed device: packets must adopt the slab
// reference zero-copy, keep their bytes intact while held, and return
// every slab to the arena once released.
func TestNICSourceUDPArenaZeroCopy(t *testing.T) {
	arena, err := osabs.NewFrameArena(512, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := osabs.NewUDPDevice(osabs.UDPConfig{
		Name: "udp-rx", Listen: "127.0.0.1:0", Batch: 8, FrameSize: 512, Arena: arena,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := osabs.NewUDPDevice(osabs.UDPConfig{Listen: "127.0.0.1:0", Peer: rx.LocalAddr(), Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	out, _ := devRig(t, rx, nil, PumpConfig{Batch: 8})
	const frames = 24
	for base := 0; base < frames; base += 8 {
		batch := make([][]byte, 0, 8)
		for i := base; i < base+8; i++ {
			batch = append(batch, []byte(fmt.Sprintf("pkt-%03d", i)))
		}
		if n, err := tx.SendBatch(batch); err != nil || n != 8 {
			t.Fatalf("send: n=%d err=%v", n, err)
		}
	}
	waitCount(t, out, frames)

	out.mu.Lock()
	seen := map[string]bool{}
	for _, p := range out.pkts {
		if p.Buf == nil {
			t.Fatal("arena-backed packet lost its slab reference")
		}
		if p.InPort != "udp-rx" {
			t.Fatalf("InPort %q", p.InPort)
		}
		seen[string(p.Data)] = true
	}
	for i := 0; i < frames; i++ {
		if want := fmt.Sprintf("pkt-%03d", i); !seen[want] {
			t.Fatalf("payload %q never surfaced (held: %v)", want, seen)
		}
	}
	if live := arena.Stats().Live; live == 0 {
		t.Fatal("arena reports no live slabs while packets are held")
	}
	for _, p := range out.pkts {
		p.Release()
	}
	out.pkts = nil
	out.mu.Unlock()
	if live := arena.Stats().Live; live != 0 {
		t.Fatalf("arena has %d live slabs after releasing every packet", live)
	}
}

// TestNICSourcePoolCopyVsWrapAliasing pins the pooled-vs-nil-pool
// contract under batched receive: the pooled path copies (mutating the
// injected frame afterwards must not reach the packet) and returns every
// buffer on Release; the nil-pool path wraps the device's bytes.
func TestNICSourcePoolCopyVsWrapAliasing(t *testing.T) {
	mk := func(name string) (*osabs.NIC, [][]byte) {
		nic, err := osabs.NewNIC(name, 64, 64)
		if err != nil {
			t.Fatal(err)
		}
		frames := make([][]byte, 16)
		for i := range frames {
			frames[i] = []byte(fmt.Sprintf("frame-%02d", i))
		}
		return nic, frames
	}

	t.Run("pooled-copies", func(t *testing.T) {
		nic, frames := mk("nic-pool")
		pool := buffers.MustNewPool([]int{256}, 32, 0)
		// Spin > 0 forces the polling pump onto the channel-backed NIC,
		// exercising RecvBatchInto batch receive.
		out, _ := devRig(t, nic, pool, PumpConfig{Batch: 8, Spin: 4, Park: time.Millisecond})
		for _, f := range frames {
			if err := nic.Inject(f); err != nil {
				t.Fatal(err)
			}
		}
		waitCount(t, out, len(frames))
		// Scribble over every injected frame; copies must not see it.
		for _, f := range frames {
			for i := range f {
				f[i] = '!'
			}
		}
		out.mu.Lock()
		for i, p := range out.pkts {
			if want := fmt.Sprintf("frame-%02d", i); string(p.Data) != want {
				t.Fatalf("packet %d aliases the injected frame: %q", i, p.Data)
			}
			if p.Buf == nil {
				t.Fatalf("packet %d: pooled path produced no buffer", i)
			}
			p.Release()
		}
		out.pkts = nil
		out.mu.Unlock()
		if live := pool.Stats().Live; live != 0 {
			t.Fatalf("pool has %d live buffers after release", live)
		}
	})

	t.Run("nil-pool-wraps", func(t *testing.T) {
		nic, frames := mk("nic-wrap")
		out, _ := devRig(t, nic, nil, PumpConfig{Batch: 8, Spin: 4, Park: time.Millisecond})
		for _, f := range frames {
			if err := nic.Inject(f); err != nil {
				t.Fatal(err)
			}
		}
		waitCount(t, out, len(frames))
		out.mu.Lock()
		defer out.mu.Unlock()
		p0 := out.pkts[0]
		if p0.Buf != nil {
			t.Fatal("nil-pool path allocated a buffer")
		}
		frames[0][0] = 'Z'
		if p0.Data[0] != 'Z' {
			t.Fatal("nil-pool path copied; expected zero-copy wrap")
		}
	})
}

// TestNICSourceBusyPollTelemetry checks the spin-then-park idle policy
// surfaces in the component's stats.
func TestNICSourceBusyPollTelemetry(t *testing.T) {
	rx, err := osabs.NewUDPDevice(osabs.UDPConfig{Listen: "127.0.0.1:0", Batch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	_, src := devRig(t, rx, nil, PumpConfig{Batch: 8, Spin: 16, Park: 200 * time.Microsecond})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var spins, parks uint64
		for _, st := range src.Stats() {
			switch st.Name {
			case "pump_spins":
				spins = uint64(st.Value)
			case "pump_parks":
				parks = uint64(st.Value)
			}
		}
		if spins > 0 && parks > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("idle pump never reported both spins and parks")
}

// TestNICSinkBatchesDeviceSend verifies the sink gathers a packet batch
// into one device SendBatch call (one syscall on the mmsg backend) and
// releases every pooled buffer afterwards.
func TestNICSinkBatchesDeviceSend(t *testing.T) {
	rx, err := osabs.NewUDPDevice(osabs.UDPConfig{Listen: "127.0.0.1:0", Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	tx, err := osabs.NewUDPDevice(osabs.UDPConfig{Name: "udp-tx", Listen: "127.0.0.1:0", Peer: rx.LocalAddr(), Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	snk, err := NewNICSink(tx)
	if err != nil {
		t.Fatal(err)
	}

	pool := buffers.MustNewPool([]int{256}, 64, 0)
	batch := make([]*Packet, 32)
	for i := range batch {
		p, err := NewPooledPacket(pool, []byte(fmt.Sprintf("tx-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		batch[i] = p
	}
	if err := snk.PushBatch(batch); err != nil {
		t.Fatal(err)
	}
	if live := pool.Stats().Live; live != 0 {
		t.Fatalf("sink left %d pooled buffers live", live)
	}
	got := 0
	deadline := time.Now().Add(5 * time.Second)
	for got < 32 && time.Now().Before(deadline) {
		frames, slab, err := rx.RecvBatchInto(nil, 32)
		if err != nil {
			t.Fatal(err)
		}
		for range frames {
			got++
			if slab != nil {
				_ = slab.Release()
			}
		}
	}
	if got != 32 {
		t.Fatalf("receiver saw %d of 32 frames", got)
	}
	if osabs.MmsgSupported() {
		if st := tx.Stats(); st.TxSyscalls != 1 {
			t.Fatalf("tx spent %d syscalls on one 32-frame PushBatch", st.TxSyscalls)
		}
	}
}
