package router

import (
	"context"
	"fmt"
	"sync"

	"netkit/core"
)

// Exportable is implemented by stateful components that support state
// migration across hot-swap (e.g. a queue handing its buffered packets to
// its replacement).
type Exportable interface {
	// ExportState returns an opaque state snapshot, quiescing the exporter.
	ExportState() any
	// ImportState installs a snapshot produced by a compatible exporter.
	ImportState(state any) error
}

// Gate is a pausable section usable as a binding interceptor: Pause blocks
// new calls and waits for in-flight ones to finish; Resume releases the
// queueing callers. It implements the quiescence half of the paper's
// managed reconfiguration story, and is measured in the E4 ablation
// (gated vs. lossless-rebind swap).
type Gate struct {
	mu sync.RWMutex
}

// Interceptor returns a core.Interceptor enforcing the gate on a binding.
func (g *Gate) Interceptor(name string) core.Interceptor {
	return core.Interceptor{
		Name: name,
		Wrap: func(op string, args []any, invoke func([]any) []any) []any {
			g.mu.RLock()
			defer g.mu.RUnlock()
			return invoke(args)
		},
	}
}

// Pause blocks until in-flight calls complete; subsequent calls wait.
func (g *Gate) Pause() { g.mu.Lock() }

// Resume releases the gate.
func (g *Gate) Resume() { g.mu.Unlock() }

// Do runs fn on the gate's read side: it blocks while the gate is paused
// and holds Pause off until fn returns. Service loops that are not binding
// crossings — the ShardedCF's shard workers, custom pumps — wrap each unit
// of work in Do so that Pause quiesces them at a unit boundary, giving
// managed reconfiguration a moment when no packet is in flight anywhere in
// the gated section.
func (g *Gate) Do(fn func()) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	fn()
}

// HotSwap replaces component oldName with newComp (inserted as newName)
// without dropping packets:
//
//  1. newComp is inserted and its receptacles are bound to the same
//     targets as oldName's (the downstream wiring is duplicated);
//  2. every binding INTO oldName is atomically retargeted to newName via
//     the capsule's Rebind primitive (single atomic pointer swap per
//     binding — concurrent pushes see old or new, never a gap);
//  3. if both components implement Exportable, state is migrated;
//  4. oldName's bindings are dismantled and the component is removed.
//
// The old component must not be a composite boundary re-exporting shared
// receptacles. On failure the capsule may be left with newName inserted
// but no traffic diverted (safe to retry or remove).
func HotSwap(c *core.Capsule, oldName, newName string, newComp core.Component) error {
	oldComp, ok := c.Component(oldName)
	if !ok {
		return fmt.Errorf("router: hotswap: %q: %w", oldName, core.ErrNotFound)
	}
	if err := c.Insert(newName, newComp); err != nil {
		return err
	}

	// Duplicate the outgoing wiring: for each of old's bound receptacles,
	// bind new's same-named receptacle to the same server.
	var outBindings []*core.Binding
	for _, b := range c.BindingsOf(oldName) {
		from, recp := b.From()
		if from != oldName {
			continue
		}
		to, iface := b.To()
		if _, ok := newComp.Receptacle(recp); !ok {
			return fmt.Errorf("router: hotswap: replacement lacks receptacle %q: %w",
				recp, core.ErrNotFound)
		}
		nb, err := c.Bind(newName, recp, to, iface)
		if err != nil {
			return fmt.Errorf("router: hotswap: rewiring %s.%s: %w", newName, recp, err)
		}
		outBindings = append(outBindings, nb)
	}
	_ = outBindings

	// Match the old component's lifecycle state before diverting traffic,
	// so active replacements (pumps, schedulers) are already running when
	// the first packet arrives.
	if c.Started(oldName) {
		if err := c.StartComponent(context.Background(), newName); err != nil {
			return err
		}
	}

	// Divert traffic: atomically retarget every inbound binding.
	for _, b := range c.BindingsOf(oldName) {
		to, _ := b.To()
		if to != oldName {
			continue
		}
		if err := c.Rebind(b.ID(), newName); err != nil {
			return fmt.Errorf("router: hotswap: diverting #%d: %w", b.ID(), err)
		}
	}

	// Migrate state after diversion so the exporter sees no new input.
	if exp, ok := oldComp.(Exportable); ok {
		if imp, ok := newComp.(Exportable); ok {
			if err := imp.ImportState(exp.ExportState()); err != nil {
				return fmt.Errorf("router: hotswap: state migration: %w", err)
			}
		}
	}

	// Dismantle the old component's own outgoing bindings and remove it.
	for _, b := range c.BindingsOf(oldName) {
		from, _ := b.From()
		if from == oldName {
			if err := c.Unbind(b.ID()); err != nil {
				return err
			}
		}
	}
	if c.Started(oldName) {
		if err := c.StopComponent(context.Background(), oldName); err != nil {
			return err
		}
	}
	return c.Remove(oldName)
}

// Queue state migration ------------------------------------------------------

// fifoState is the exported form of a queue's buffered packets. FIFOQueue
// and REDQueue both speak it, so hot-swap migrates state in either
// direction — the FIFO↔RED substitution the adaptation engine performs
// when sustained occupancy calls for (or no longer needs) early dropping.
type fifoState struct {
	packets []*Packet
}

// ExportState implements Exportable: it drains the queue.
func (q *FIFOQueue) ExportState() any {
	var ps []*Packet
	for {
		p, err := q.Pull()
		if err != nil {
			break
		}
		ps = append(ps, p)
	}
	return &fifoState{packets: ps}
}

// ImportState implements Exportable.
func (q *FIFOQueue) ImportState(state any) error {
	st, ok := state.(*fifoState)
	if !ok {
		return fmt.Errorf("router: fifo import: bad state %T", state)
	}
	for _, p := range st.packets {
		if err := q.Push(p); err != nil {
			return err
		}
	}
	return nil
}

var _ Exportable = (*FIFOQueue)(nil)

// ExportState implements Exportable: it drains the RED queue.
func (q *REDQueue) ExportState() any {
	var ps []*Packet
	for {
		p, err := q.Pull()
		if err != nil {
			break
		}
		ps = append(ps, p)
	}
	return &fifoState{packets: ps}
}

// ImportState implements Exportable. Migrated packets were already
// admitted by the predecessor queue, so they bypass RED's admission test
// and enqueue directly; only a genuinely full ring drops (counted as a
// forced drop), exactly as the per-packet path would at capacity. The
// EWMA is seeded to the imported backlog, so a queue swapped in *because*
// of congestion starts early-dropping immediately instead of spending
// ~1/weight arrivals warming up from zero.
func (q *REDQueue) ImportState(state any) error {
	st, ok := state.(*fifoState)
	if !ok {
		return fmt.Errorf("router: red import: bad state %T", state)
	}
	for _, p := range st.packets {
		q.in.Add(1)
		q.mu.Lock()
		if q.size == len(q.ring) {
			q.mu.Unlock()
			q.forcedDrops.Add(1)
			q.dropped.Add(1)
			p.Release()
			continue
		}
		q.ring[(q.head+q.size)%len(q.ring)] = p
		q.size++
		q.mu.Unlock()
	}
	q.mu.Lock()
	if avg := float64(q.size); q.avg < avg {
		q.avg = avg
	}
	q.mu.Unlock()
	return nil
}

var _ Exportable = (*REDQueue)(nil)
