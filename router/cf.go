package router

import (
	"errors"
	"fmt"

	"netkit/cf"
	"netkit/core"
)

// RouterCFName is the framework name used for stratum-2 instances.
const RouterCFName = "netkit.RouterCF"

// ErrNotCompliant wraps Router-CF rule failures (callers usually match
// cf.ErrRuleViolated, which these rules return through).
var ErrNotCompliant = errors.New("router: component not compliant with Router CF rules")

// packetIfaceIDs are the data-path interfaces the CF's shape rules count.
var packetIfaceIDs = []core.InterfaceID{IPacketPushID, IPacketPullID}

// hasPacketInterface reports whether comp provides a packet interface.
func hasPacketInterface(comp core.Component) bool {
	for _, id := range packetIfaceIDs {
		if _, ok := comp.Provided(id); ok {
			return true
		}
	}
	return false
}

// packetReceptacleCount counts packet-typed receptacles.
func packetReceptacleCount(comp core.Component) int {
	n := 0
	for _, name := range comp.ReceptacleNames() {
		r, ok := comp.Receptacle(name)
		if !ok {
			continue
		}
		if r.Iface() == IPacketPushID || r.Iface() == IPacketPullID {
			n++
		}
	}
	return n
}

// RulePacketInterfaces is §5's first rule: compliant components must
// support appropriate numbers and combinations of the packet-passing
// interfaces/receptacles — concretely, they must participate in the data
// path by providing IPacketPush/IPacketPull or requiring one via a
// receptacle.
func RulePacketInterfaces() cf.Rule {
	return cf.Rule{
		Name: "packet-interfaces",
		Check: func(_ *cf.Framework, name string, comp core.Component) error {
			if hasPacketInterface(comp) || packetReceptacleCount(comp) > 0 {
				return nil
			}
			return fmt.Errorf("%q neither provides nor requires a packet interface: %w",
				name, ErrNotCompliant)
		},
	}
}

// RuleClassifierOutputs is §5's second rule: a component providing
// IClassifier must expose at least one named outgoing packet interface for
// filters to route to.
func RuleClassifierOutputs() cf.Rule {
	return cf.Rule{
		Name: "classifier-outputs",
		Check: func(_ *cf.Framework, name string, comp core.Component) error {
			if _, ok := comp.Provided(IClassifierID); !ok {
				return nil
			}
			if packetReceptacleCount(comp) == 0 {
				return fmt.Errorf("%q provides IClassifier but has no outgoing packet interfaces: %w",
					name, ErrNotCompliant)
			}
			cls, ok := comp.Provided(IClassifierID)
			if !ok {
				return nil
			}
			if c, ok := cls.(IClassifier); ok && len(c.FilterOutputs()) == 0 {
				return fmt.Errorf("%q advertises no filter outputs: %w", name, ErrNotCompliant)
			}
			return nil
		},
	}
}

// RuleCompositeRecursive is §5's third rule: composite members must
// recursively conform (their nested framework re-checks its own members,
// which carry the same rules) and must contain a controller.
func RuleCompositeRecursive() cf.Rule {
	return cf.Rule{
		Name: "composite-recursive",
		Check: func(_ *cf.Framework, name string, comp core.Component) error {
			comps, ok := comp.(*cf.Composite)
			if !ok {
				return nil
			}
			if comps.Controller() == nil {
				return fmt.Errorf("composite %q lacks a controller: %w", name, ErrNotCompliant)
			}
			if err := comps.Framework().RecheckAll(); err != nil {
				return fmt.Errorf("composite %q inner members: %w", name, err)
			}
			return nil
		},
	}
}

// RuleTrustAnnotated enforces the §5 isolation policy when strict: a
// component annotated untrusted must be hosted out-of-process (its in-proc
// stand-in carries the netkit.remote annotation placed by the IPC layer).
func RuleTrustAnnotated(strict bool) cf.Rule {
	return cf.Rule{
		Name: "trust-isolation",
		Check: func(_ *cf.Framework, name string, comp core.Component) error {
			if !strict {
				return nil
			}
			ann := comp.Annotations()
			if ann[core.AnnotTrust] == "untrusted" && ann["netkit.remote"] != "true" {
				return fmt.Errorf("untrusted %q must be instantiated out-of-process: %w",
					name, ErrNotCompliant)
			}
			return nil
		},
	}
}

// Rules returns the full Router CF rule set. strictTrust enables the
// out-of-process isolation rule.
func Rules(strictTrust bool) []cf.Rule {
	return []cf.Rule{
		RulePacketInterfaces(),
		RuleClassifierOutputs(),
		RuleCompositeRecursive(),
		RuleTrustAnnotated(strictTrust),
	}
}

// NewFramework creates a Router CF instance over a capsule.
func NewFramework(capsule *core.Capsule, strictTrust bool) (*cf.Framework, error) {
	return cf.New(RouterCFName, capsule, Rules(strictTrust))
}

// ConnectPush binds from's receptacle to to's IPacketPush.
func ConnectPush(c *core.Capsule, from, receptacle, to string) (*core.Binding, error) {
	return c.Bind(from, receptacle, to, IPacketPushID)
}

// ConnectPull binds from's receptacle to to's IPacketPull.
func ConnectPull(c *core.Capsule, from, receptacle, to string) (*core.Binding, error) {
	return c.Bind(from, receptacle, to, IPacketPullID)
}
